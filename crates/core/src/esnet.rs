//! ESNet: gaze tracking, saccade detection and saliency generation
//! (Section 3.2, Fig. 6 (b)).
//!
//! * [`GtVit`] — the Gaze-Tracking Vision Transformer: patch embedding +
//!   CLS token + positional embedding + transformer blocks + a linear gaze
//!   head. At inference, tokens are pruned between blocks by attention
//!   importance (the accelerator's token selector); training runs without
//!   pruning.
//! * [`SaliencyNet`] — the small convolutional saliency head over the
//!   preview frame `I_f^d` plus a gaze-prior channel; trained with the
//!   Eq. 4 MSE regularizer toward the (downsampled) IOI mask.
//! * [`EsNet`] — the assembly, including the RNN saccade detector, with
//!   the streaming state (gaze history) the SSA consumes.

use rand::Rng;
use solo_gaze::{GazePoint, GazeSample, RnnSaccadeDetector};
use solo_nn::{
    loss, prune, Adam, Conv2d, Layer, Linear, Optimizer, Param, PositionalEmbedding, Relu, Sigmoid,
    TransformerBlock, TransformerConfig,
};
use solo_sampler::{gaze_saliency, mix_saliency};
use solo_scene::EyeSample;
use solo_tensor::Tensor;

/// GT-ViT geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtVitConfig {
    /// Eye-image side (square, monochrome).
    pub eye_res: usize,
    /// Patch side.
    pub patch: usize,
    /// Transformer stack configuration.
    pub transformer: TransformerConfig,
    /// Fraction of tokens kept across the whole stack (paper: 0.7).
    pub keep_ratio: f32,
}

impl GtVitConfig {
    /// A small functional configuration used by tests and the examples:
    /// 32² eye images, 8-px patches (17 tokens), dim 32, 2 blocks.
    pub fn tiny() -> Self {
        Self {
            eye_res: 32,
            patch: 8,
            transformer: TransformerConfig {
                dim: 32,
                heads: 2,
                depth: 2,
                mlp_dim: 64,
            },
            keep_ratio: 0.7,
        }
    }

    /// The paper's configuration (dim 384, 6 heads, 8 blocks) — used by
    /// the hardware models; too large to train in tests.
    pub fn paper() -> Self {
        Self {
            eye_res: 128,
            patch: 16,
            transformer: TransformerConfig::gt_vit(),
            keep_ratio: 0.7,
        }
    }

    /// Token count including CLS.
    pub fn tokens(&self) -> usize {
        (self.eye_res / self.patch).pow(2) + 1
    }
}

/// The Gaze-Tracking Vision Transformer.
pub struct GtVit {
    config: GtVitConfig,
    patch_embed: Linear,
    cls: Param,
    pos: PositionalEmbedding,
    blocks: Vec<TransformerBlock>,
    head: Linear,
    sigmoid: Sigmoid,
    last_tokens: usize,
}

impl GtVit {
    /// Builds an untrained GT-ViT.
    pub fn new(rng: &mut impl Rng, config: GtVitConfig) -> Self {
        let dim = config.transformer.dim;
        let blocks = (0..config.transformer.depth)
            .map(|_| TransformerBlock::new(rng, &config.transformer))
            .collect();
        Self {
            patch_embed: Linear::new(rng, config.patch * config.patch, dim),
            cls: Param::new(solo_tensor::normal(rng, &[1, dim], 0.0, 0.02)),
            pos: PositionalEmbedding::new(rng, config.tokens(), dim),
            blocks,
            head: Linear::new(rng, dim, 2),
            sigmoid: Sigmoid::new(),
            config,
            last_tokens: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GtVitConfig {
        &self.config
    }

    /// Splits a `[1, res, res]` eye image into a `[T−1, patch²]` matrix of
    /// flattened patches.
    ///
    /// # Panics
    ///
    /// Panics if the image does not match the configured resolution.
    pub fn tokenize(&self, eye: &Tensor) -> Tensor {
        let r = self.config.eye_res;
        let p = self.config.patch;
        assert_eq!(
            eye.shape().dims(),
            &[1, r, r],
            "eye image must be [1, {r}, {r}], got {}",
            eye.shape()
        );
        let n = r / p;
        let src = eye.as_slice();
        let mut out = vec![0.0f32; n * n * p * p];
        for ti in 0..n {
            for tj in 0..n {
                let t = ti * n + tj;
                for pi in 0..p {
                    for pj in 0..p {
                        out[t * p * p + pi * p + pj] = src[(ti * p + pi) * r + tj * p + pj];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n * n, p * p])
    }

    fn embed(&mut self, eye: &Tensor, train: bool) -> Tensor {
        let patches = self.tokenize(eye);
        let embedded = if train {
            self.patch_embed.forward(&patches)
        } else {
            self.patch_embed.infer(&patches)
        };
        let tokens = Tensor::concat_rows(&[self.cls.value().clone(), embedded]);
        // PositionalEmbedding::forward is cache-free (its backward only
        // accumulates the incoming gradient), so both paths share it.
        self.pos.forward(&tokens)
    }

    /// Gaze prediction with between-block token pruning (the deployment
    /// path; Section 3.2).
    pub fn predict(&mut self, eye: &Tensor) -> GazePoint {
        let mut x = self.embed(eye, false);
        let per_block_keep = self
            .config
            .keep_ratio
            .powf(1.0 / self.config.transformer.depth as f32);
        for i in 0..self.blocks.len() {
            x = self.blocks[i].infer(&x);
            if per_block_keep < 1.0 {
                let attn = self.blocks[i]
                    .attention()
                    .last_attention()
                    // lint:allow(P1): infer() on the line above always records attention before pruning reads it
                    .expect("attention recorded during infer");
                let importance = prune::token_importance(attn);
                let kept = prune::select_tokens(&importance, per_block_keep);
                x = prune::gather_tokens(&x, &kept);
            }
        }
        let cls = x.row(0);
        let g = self.sigmoid.infer(&self.head.infer(&cls));
        GazePoint::new(g.at(&[0]), g.at(&[1]))
    }

    /// Training forward (no pruning): returns the predicted gaze `[2]`.
    pub fn forward_train(&mut self, eye: &Tensor) -> Tensor {
        let mut x = self.embed(eye, true);
        for block in &mut self.blocks {
            x = block.forward(&x);
        }
        let cls = x.row(0);
        self.last_tokens = x.shape().dim(0);
        self.sigmoid.forward(&self.head.forward(&cls))
    }

    /// Training backward from the gaze-space gradient `[2]`.
    pub fn backward_train(&mut self, grad: &Tensor) {
        let g_cls = self.head.backward(&self.sigmoid.backward(grad));
        let t = self.last_tokens;
        let dim = self.config.transformer.dim;
        let mut g_tokens = Tensor::zeros(&[t, dim]);
        g_tokens.as_mut_slice()[..dim].copy_from_slice(g_cls.as_slice());
        let mut g = g_tokens;
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        let g = self.pos.backward(&g);
        // Row 0 feeds the CLS parameter; the rest feed the patch embedding.
        let dim_row = Tensor::from_vec(g.as_slice()[..dim].to_vec(), &[1, dim]);
        self.cls.accumulate(&dim_row);
        let rest = Tensor::from_vec(g.as_slice()[dim..].to_vec(), &[t - 1, dim]);
        self.patch_embed.backward(&rest);
    }

    /// Pretrains on labelled eye images with MSE gaze loss (Section 3.4's
    /// OpenEDS pretraining). Returns the mean loss of the final epoch.
    pub fn pretrain(&mut self, samples: &[EyeSample], epochs: usize, lr: f32) -> f32 {
        let mut opt = Adam::new(lr).with_grad_clip(5.0);
        let mut final_loss = f32::INFINITY;
        for _ in 0..epochs {
            let mut epoch = 0.0;
            for s in samples {
                let pred = self.forward_train(&s.image);
                let target = Tensor::from_vec(vec![s.gaze.x, s.gaze.y], &[2]);
                let (l, g) = loss::mse(&pred, &target);
                epoch += l;
                self.backward_train(&g);
                opt.step(self);
            }
            final_loss = epoch / samples.len().max(1) as f32;
        }
        final_loss
    }

    /// Mean gaze error (normalized units) over labelled samples, using the
    /// pruned deployment path.
    pub fn gaze_error(&mut self, samples: &[EyeSample]) -> f32 {
        let total: f32 = samples
            .iter()
            .map(|s| {
                let p = self.predict(&s.image);
                p.distance(&s.gaze)
            })
            .sum();
        total / samples.len().max(1) as f32
    }
}

impl Layer for GtVit {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.forward_train(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_train(grad_out);
        // Input gradients of the eye image are never needed.
        Tensor::zeros(&[1, self.config.eye_res, self.config.eye_res])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.patch_embed.visit_params(f);
        f(&mut self.cls);
        self.pos.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

impl std::fmt::Debug for GtVit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GtVit(dim {}, {} blocks, {} tokens)",
            self.config.transformer.dim,
            self.config.transformer.depth,
            self.config.tokens()
        )
    }
}

/// The convolutional saliency head: preview RGB + a gaze-prior channel in,
/// saliency score map out.
pub struct SaliencyNet {
    c1: Conv2d,
    r1: Relu,
    c2: Conv2d,
    r2: Relu,
    c3: Conv2d,
    sig: Sigmoid,
    /// Whether the gaze channel is used (false reproduces the LTD
    /// baseline's gaze-free saliency).
    pub use_gaze: bool,
}

impl SaliencyNet {
    /// Builds the head.
    pub fn new(rng: &mut impl Rng, use_gaze: bool) -> Self {
        Self {
            c1: Conv2d::new(rng, 4, 8, 3),
            r1: Relu::new(),
            c2: Conv2d::new(rng, 8, 8, 3),
            r2: Relu::new(),
            c3: Conv2d::new(rng, 8, 1, 3),
            sig: Sigmoid::new(),
            use_gaze,
        }
    }

    fn pack_input(&self, preview: &Tensor, gaze: GazePoint) -> Tensor {
        assert_eq!(preview.shape().ndim(), 3, "preview must be [3,h,w]");
        assert_eq!(preview.shape().dim(0), 3, "preview must have 3 channels");
        let (h, w) = (preview.shape().dim(1), preview.shape().dim(2));
        let prior = if self.use_gaze {
            gaze_saliency(h, w, (gaze.x, gaze.y), 0.12, 0.0)
        } else {
            Tensor::zeros(&[h, w])
        };
        let mut data = preview.as_slice().to_vec();
        data.extend_from_slice(prior.as_slice());
        Tensor::from_vec(data, &[4, h, w])
    }

    /// Produces the saliency map `[h, w]` for a preview frame and gaze.
    pub fn saliency(&mut self, preview: &Tensor, gaze: GazePoint) -> Tensor {
        let x = self.pack_input(preview, gaze);
        let (h, w) = (x.shape().dim(1), x.shape().dim(2));
        let y = self.sig.infer(
            &self.c3.infer(
                &self
                    .r2
                    .infer(&self.c2.infer(&self.r1.infer(&self.c1.infer(&x)))),
            ),
        );
        let learned = y.into_reshaped(&[h, w]);
        if self.use_gaze {
            // Blend the learned content term with the hard gaze prior so an
            // untrained head still foveates (and a trained one sharpens),
            // then square the map: Eq. 2/3 are scale-invariant in S, so
            // squaring raises the *contrast* between IOI and periphery,
            // which is what controls the foveal zoom strength.
            let prior = gaze_saliency(h, w, (gaze.x, gaze.y), 0.12, 0.02);
            mix_saliency(&prior, &learned, 0.6).map(|v| v * v)
        } else {
            learned.add_scalar(0.02)
        }
    }

    /// One Eq.-4 regularizer step: pull the learned map toward the
    /// (downsampled) ground-truth IOI mask with MSE. Returns the loss.
    pub fn train_step(
        &mut self,
        preview: &Tensor,
        gaze: GazePoint,
        target: &Tensor,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let x = self.pack_input(preview, gaze);
        let (h, w) = (x.shape().dim(1), x.shape().dim(2));
        let y = self.sig.forward(
            &self.c3.forward(
                &self
                    .r2
                    .forward(&self.c2.forward(&self.r1.forward(&self.c1.forward(&x)))),
            ),
        );
        let pred = y.reshape(&[h, w]);
        let (l, g) = loss::mse(&pred, target);
        let g = g.into_reshaped(&[1, h, w]);
        let g = self.c1.backward(
            &self.r1.backward(
                &self
                    .c2
                    .backward(&self.r2.backward(&self.c3.backward(&self.sig.backward(&g)))),
            ),
        );
        let _ = g;
        opt.step(self);
        l
    }
}

impl Layer for SaliencyNet {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.sig.forward(
            &self.c3.forward(
                &self
                    .r2
                    .forward(&self.c2.forward(&self.r1.forward(&self.c1.forward(input)))),
            ),
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.c1.backward(
            &self.r1.backward(
                &self.c2.backward(
                    &self
                        .r2
                        .backward(&self.c3.backward(&self.sig.backward(grad_out))),
                ),
            ),
        )
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.c1.visit_params(f);
        self.c2.visit_params(f);
        self.c3.visit_params(f);
    }
}

impl std::fmt::Debug for SaliencyNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SaliencyNet(use_gaze: {})", self.use_gaze)
    }
}

/// ESNet output for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EsnetOutput {
    /// Predicted gaze.
    pub gaze: GazePoint,
    /// Whether a saccade is in progress.
    pub saccade: bool,
    /// The saliency score map over the preview grid.
    pub saliency: Tensor,
}

/// The assembled ESNet.
pub struct EsNet {
    /// Gaze tracker.
    pub vit: GtVit,
    /// Saccade detector.
    pub saccade: RnnSaccadeDetector,
    /// Saliency head.
    pub saliency: SaliencyNet,
    history: Vec<GazeSample>,
    history_cap: usize,
}

impl EsNet {
    /// Builds an untrained ESNet with the tiny functional configuration.
    pub fn new(rng: &mut impl Rng) -> Self {
        Self {
            vit: GtVit::new(rng, GtVitConfig::tiny()),
            saccade: RnnSaccadeDetector::new(rng, 8),
            saliency: SaliencyNet::new(rng, true),
            history: Vec::new(),
            history_cap: 16,
        }
    }

    /// Processes one frame: eye image → gaze; gaze history → saccade flag;
    /// preview + gaze → saliency map.
    pub fn process(&mut self, eye: &Tensor, preview: &Tensor, t_ms: f64) -> EsnetOutput {
        let gaze = self.vit.predict(eye);
        self.history.push(GazeSample {
            t_ms,
            point: gaze,
            phase: solo_gaze::EyePhase::Fixation, // unknown at runtime
        });
        if self.history.len() > self.history_cap {
            self.history.remove(0);
        }
        let saccade = *self.saccade.detect(&self.history).last().unwrap_or(&false);
        let saliency = self.saliency.saliency(preview, gaze);
        EsnetOutput {
            gaze,
            saccade,
            saliency,
        }
    }

    /// Clears the gaze history (start of a new stream).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

impl std::fmt::Debug for EsNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EsNet({:?}, history {})", self.vit, self.history.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solo_scene::EyeDataset;
    use solo_tensor::seeded_rng;

    #[test]
    fn tokenize_produces_expected_grid() {
        let mut rng = seeded_rng(90);
        let vit = GtVit::new(&mut rng, GtVitConfig::tiny());
        let eye = Tensor::arange(32 * 32).reshape(&[1, 32, 32]);
        let tokens = vit.tokenize(&eye);
        assert_eq!(tokens.shape().dims(), &[16, 64]);
        // First element of first patch is pixel (0,0).
        assert_eq!(tokens.at(&[0, 0]), 0.0);
        // First element of second patch is pixel (0,8).
        assert_eq!(tokens.at(&[1, 0]), 8.0);
    }

    #[test]
    fn predict_outputs_unit_square_gaze() {
        let mut rng = seeded_rng(91);
        let mut vit = GtVit::new(&mut rng, GtVitConfig::tiny());
        let eye = solo_tensor::uniform(&mut rng, &[1, 32, 32], 0.0, 1.0);
        let g = vit.predict(&eye);
        assert!((0.0..=1.0).contains(&g.x) && (0.0..=1.0).contains(&g.y));
    }

    #[test]
    fn pretraining_reduces_gaze_error() {
        let mut rng = seeded_rng(92);
        let ds = EyeDataset::default();
        let train = ds.samples(60, &mut rng);
        let test = ds.samples(20, &mut rng);
        let mut vit = GtVit::new(&mut rng, GtVitConfig::tiny());
        let before = vit.gaze_error(&test);
        vit.pretrain(&train, 16, 2e-3);
        let after = vit.gaze_error(&test);
        assert!(
            after < before * 0.8,
            "gaze error {before} -> {after} did not improve"
        );
        // Should comfortably beat the ~0.38 error of always answering the
        // image center for uniform targets.
        assert!(after < 0.3, "gaze error {after}");
    }

    #[test]
    fn pruned_prediction_stays_close_to_unpruned() {
        let mut rng = seeded_rng(93);
        let ds = EyeDataset::default();
        let train = ds.samples(40, &mut rng);
        let mut vit = GtVit::new(&mut rng, GtVitConfig::tiny());
        vit.pretrain(&train, 8, 2e-3);
        let eye = ds.sample(&mut rng).image;
        let pruned = vit.predict(&eye);
        vit.config.keep_ratio = 1.0;
        let full = vit.predict(&eye);
        assert!(
            pruned.distance(&full) < 0.15,
            "pruning moved gaze by {}",
            pruned.distance(&full)
        );
    }

    #[test]
    fn saliency_net_learns_a_mask() {
        let mut rng = seeded_rng(94);
        let mut net = SaliencyNet::new(&mut rng, true);
        let preview = solo_tensor::uniform(&mut rng, &[3, 16, 16], 0.0, 1.0);
        let mut target = Tensor::zeros(&[16, 16]);
        for i in 4..10 {
            for j in 4..10 {
                target.set(&[i, j], 1.0);
            }
        }
        let gaze = GazePoint::new(0.45, 0.45);
        let mut opt = Adam::new(5e-3);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            let l = net.train_step(&preview, gaze, &target, &mut opt);
            if step == 0 {
                first = l;
            }
            last = l;
        }
        assert!(last < first * 0.6, "saliency loss {first} -> {last}");
    }

    #[test]
    fn esnet_process_emits_consistent_output() {
        let mut rng = seeded_rng(95);
        let mut esnet = EsNet::new(&mut rng);
        let eye = solo_tensor::uniform(&mut rng, &[1, 32, 32], 0.0, 1.0);
        let preview = solo_tensor::uniform(&mut rng, &[3, 16, 16], 0.0, 1.0);
        let out = esnet.process(&eye, &preview, 0.0);
        assert_eq!(out.saliency.shape().dims(), &[16, 16]);
        assert!(out.saliency.min() >= 0.0);
        // With a single (static) history sample there is no saccade.
        assert!(!out.saccade);
    }
}
