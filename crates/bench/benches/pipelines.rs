//! Criterion benches over the hot paths: one per table/figure family.
//!
//! These time the *simulators and algorithms themselves* (the tables'
//! numbers are produced by the `src/bin` binaries); keeping them fast keeps
//! full-table regeneration cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use solo_core::experiments;
use solo_hw::sensor::{synthetic_foveated_selection, Lighting, Sensor};
use solo_hw::soc::{Backbone, Dataset, Pipeline, SocModel};
use solo_sampler::{gaze_saliency, IndexMap, SamplerSpec};
use solo_tensor::{seeded_rng, Tensor};

/// Table 1 / Table 3 / Table 4 substrate: the GPU roofline + SoC pipeline.
fn bench_e2e_pipeline(c: &mut Criterion) {
    let soc = SocModel::default();
    c.bench_function("soc_evaluate_solo_hr_lvis", |b| {
        b.iter(|| soc.evaluate(Pipeline::Solo, Backbone::Hr, Dataset::Lvis))
    });
    c.bench_function("soc_fig13b_full_grid", |b| b.iter(experiments::fig13b));
}

/// Fig. 15 substrate: sensor readout scheduling.
fn bench_sensor_readout(c: &mut Criterion) {
    let sensor = Sensor::new(960, 960);
    let sel = synthetic_foveated_selection(960, 120);
    c.bench_function("sensor_full_readout_960", |b| {
        b.iter(|| sensor.full_readout(Lighting::High))
    });
    c.bench_function("sensor_sbs_readout_960_to_120", |b| {
        b.iter(|| sensor.sbs_readout(&sel, Lighting::High))
    });
}

/// Table 2 / Fig. 12-13 substrate: the Eq. 2/3 sampler.
fn bench_sampler(c: &mut Criterion) {
    let spec = SamplerSpec::new(96, 96, 24, 24, 7.0);
    let saliency = gaze_saliency(24, 24, (0.4, 0.6), 0.1, 0.02);
    let map = IndexMap::from_saliency(&spec, &saliency);
    let img = Tensor::ones(&[3, 96, 96]);
    c.bench_function("index_map_from_saliency_24", |b| {
        b.iter(|| IndexMap::from_saliency(&spec, &saliency))
    });
    c.bench_function("sample_bilinear_96_to_24", |b| {
        b.iter(|| map.sample_bilinear(&img))
    });
    c.bench_function("upsample_24_to_96", |b| {
        let small = map.sample_bilinear(&img);
        b.iter(|| map.upsample(&small))
    });
}

/// GT-ViT inference with token pruning (the accelerator's functional side).
fn bench_gtvit(c: &mut Criterion) {
    use solo_core::esnet::{GtVit, GtVitConfig};
    let mut rng = seeded_rng(1);
    let mut vit = GtVit::new(&mut rng, GtVitConfig::tiny());
    let eye = solo_tensor::uniform(&mut rng, &[1, 32, 32], 0.0, 1.0);
    c.bench_function("gtvit_tiny_predict_pruned", |b| {
        b.iter(|| vit.predict(&eye))
    });
}

/// The SSA decision path (per-frame streaming cost).
fn bench_ssa(c: &mut Criterion) {
    use solo_core::ssa::{Ssa, SsaConfig};
    use solo_gaze::GazePoint;
    let preview = Tensor::ones(&[3, 24, 24]);
    c.bench_function("ssa_step", |b| {
        let mut ssa = Ssa::new(SsaConfig::paper_default(960));
        ssa.step(&preview, GazePoint::center(), false);
        b.iter(|| ssa.step(&preview, GazePoint::center(), false))
    });
}

criterion_group!(
    benches,
    bench_e2e_pipeline,
    bench_sensor_readout,
    bench_sampler,
    bench_gtvit,
    bench_ssa
);
criterion_main!(benches);
