//! # solo-bench
//!
//! The benchmark harness: one binary per table/figure of the paper
//! (`cargo run --release -p solo-bench --bin <name>`), plus Criterion
//! benches over the hot simulator and algorithm paths and ablation sweeps
//! for the design choices called out in DESIGN.md.
//!
//! | binary   | regenerates |
//! |----------|-------------|
//! | `table1` | Table 1 — GPU latency vs input size |
//! | `fig3`   | Fig. 3 — gaze-study statistics |
//! | `table2` | Table 2 — accuracy of AD/LTD/SOLO/FR (trains from scratch) |
//! | `fig12a` | Fig. 12 (a) — c-IoU vs GFLOPs against M2F/OF stand-ins |
//! | `fig12b` | Fig. 12 (b) — SSA accuracy/skip trade-off |
//! | `fig13a` | Fig. 13 (a) — IoU vs downsample size |
//! | `fig13b` | Fig. 13 (b) — speedup & energy savings |
//! | `table3` | Table 3 — FR+GPU vs SOLO latency |
//! | `table4` | Table 4 — NPU comparison |
//! | `fig14a` | Fig. 14 (a) — latency breakdowns |
//! | `fig14b` | Fig. 14 (b) — SSA speedup sweep |
//! | `fig15`  | Fig. 15 — sensor latency/energy split |
//! | `fig17`  | Fig. 17 — simulated user study |
//! | `davis`  | Section 6.6 — DAVIS robustness |
//! | `streaming` | Speculation sweep (K × saccade rate × deadline), archived in `BENCH_streaming.json` |
//! | `serving` | Multi-session serving: cross-session batched inference core + sessions × deadline × batch sweep, archived in `BENCH_serving.json` |
//! | `area`   | Section 6.1 — accelerator area breakdown |
//! | `ablations` | DESIGN.md ablations (pruning, quant, ADC groups, σ, λ) |
//!
//! Every binary prints a human-readable table and, with `--json`, a JSON
//! blob suitable for archiving in `EXPERIMENTS.md` regeneration runs.

use serde::Serialize;

/// Prints `value` as pretty JSON when `--json` was passed, returning
/// whether it did.
pub fn maybe_json<T: Serialize>(value: &T) -> bool {
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(value).expect("serializable result")
        );
        true
    } else {
        false
    }
}

/// Standard run header.
pub fn header(title: &str) {
    println!("=== {title} ===");
}
