//! Ablation sweeps for the design choices DESIGN.md calls out:
//!
//! 1. GT-ViT token-pruning ratio vs accelerator cycles/energy;
//! 2. int8 vs f32 datapath energy and numerical error;
//! 3. ADC sub-groups per column vs readout rounds;
//! 4. sampler σ vs foveal sample concentration;
//! 5. Eq. 4 λ vs saliency-regularizer convergence.

use solo_bench::header;
use solo_hw::accelerator::{Accelerator, Workload};
use solo_hw::calib::accelerator as acal;
use solo_hw::sensor::{synthetic_foveated_selection, Lighting, Sensor};
use solo_nn::quant;
use solo_sampler::{gaze_saliency, IndexMap, SamplerSpec};
use solo_tensor::{normal, seeded_rng};

fn main() {
    pruning();
    quantization();
    adc_groups();
    sigma_sweep();
    lambda_sweep();
}

fn pruning() {
    header("Ablation 1 — token pruning ratio (GT-ViT on the accelerator)");
    let acc = Accelerator::default();
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "keep", "cycles", "energy µJ", "latency"
    );
    for keep in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let cost = acc.run(&Workload::esnet(80, 80, keep));
        println!(
            "{keep:>6.1} {:>12} {:>12.1} {:>10}",
            cost.array_cycles,
            cost.energy.uj(),
            cost.latency.to_string()
        );
    }
}

fn quantization() {
    header("Ablation 2 — int8 vs f32 datapath");
    let mut rng = seeded_rng(9);
    let a = normal(&mut rng, &[64, 384], 0.0, 1.0);
    let b = normal(&mut rng, &[384, 384], 0.0, 1.0);
    let exact = a.matmul(&b);
    let q = quant::fake_quant_matmul(&a, &b);
    let rel = exact.sub(&q).norm_sq().sqrt() / exact.norm_sq().sqrt();
    // f32 MACs cost ≈ 4× an int8 MAC at iso-node (energy tables).
    let w = Workload::esnet(80, 80, 0.7);
    let macs = w.macs(&Accelerator::default().array) as f64;
    println!("relative GEMM error from int8 : {rel:.4}");
    println!(
        "MAC energy, int8 vs f32       : {:.1} µJ vs {:.1} µJ",
        macs * acal::MAC_PJ / 1e6,
        macs * 4.0 * acal::MAC_PJ / 1e6
    );
}

fn adc_groups() {
    header("Ablation 3 — ADC sub-groups per column (960² frame, SBS 120²)");
    println!(
        "{:>7} {:>8} {:>12} {:>12}",
        "groups", "ADCs", "full rounds", "SBS rounds"
    );
    let sel = synthetic_foveated_selection(960, 120);
    for groups in [1usize, 2, 4, 8] {
        let s = Sensor::with_groups(960, 960, groups);
        let full = s.full_readout(Lighting::High);
        let sbs = s.sbs_readout(&sel, Lighting::High);
        println!(
            "{groups:>7} {:>8} {:>12} {:>12}",
            s.adc_count(),
            full.rounds,
            sbs.rounds
        );
    }
}

fn sigma_sweep() {
    header("Ablation 4 — sampler σ vs foveal concentration (64² → 16²)");
    println!("{:>8} {:>22}", "σ (px)", "samples within r=8 px");
    for sigma in [2.0f32, 4.0, 6.0, 9.0, 14.0, 20.0] {
        let spec = SamplerSpec::new(64, 64, 16, 16, sigma);
        let s = gaze_saliency(16, 16, (0.5, 0.5), 0.1, 0.02).map(|v| v * v);
        let map = IndexMap::from_saliency(&spec, &s);
        let near = map
            .pixel_indices()
            .iter()
            .filter(|&&(r, c)| ((r as f32 - 32.0).powi(2) + (c as f32 - 32.0).powi(2)).sqrt() < 8.0)
            .count();
        println!("{sigma:>8.1} {near:>22}");
    }
}

fn lambda_sweep() {
    header("Ablation 5 — Eq. 4 λ vs saliency-regularizer loss (40 steps)");
    use rand::Rng;
    use solo_core::esnet::SaliencyNet;
    use solo_gaze::GazePoint;
    use solo_nn::Adam;
    use solo_tensor::Tensor;
    println!("{:>6} {:>12}", "λ", "final MSE");
    for lambda in [0.01f32, 0.05, 0.1, 0.3, 1.0] {
        let mut rng = seeded_rng(11);
        let mut net = SaliencyNet::new(&mut rng, true);
        let preview = solo_tensor::uniform(&mut rng, &[3, 16, 16], 0.0, 1.0);
        let mut target = Tensor::zeros(&[16, 16]);
        for i in 5..11 {
            for j in 5..11 {
                target.set(&[i, j], 1.0);
            }
        }
        let gaze = GazePoint::new(rng.gen_range(0.3..0.7), rng.gen_range(0.3..0.7));
        let mut opt = Adam::new(5e-3 * lambda);
        let mut last = 0.0;
        for _ in 0..40 {
            last = net.train_step(&preview, gaze, &target, &mut opt);
        }
        println!("{lambda:>6.2} {last:>12.4}");
    }
}
