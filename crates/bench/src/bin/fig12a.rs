//! Regenerates Fig. 12 (a): c-IoU vs GFLOPs for SOLO backbones and
//! FLOPs-matched full-frame comparators (M2F/OF stand-ins).

use solo_bench::{header, maybe_json};
use solo_core::experiments::{fig12a, Budget};

fn main() {
    let budget = if std::env::args().any(|a| a == "--quick") {
        Budget::quick()
    } else {
        Budget::full()
    };
    let points = fig12a(&budget, 2);
    if maybe_json(&points) {
        return;
    }
    header("Fig. 12 (a) — c-IoU at matched FLOPs (LVIS-like)");
    println!(
        "{:<10} {:>6} {:>9} {:>7}",
        "method", "kind", "GFLOPs", "c-IoU"
    );
    for p in &points {
        println!(
            "{:<10} {:>6} {:>9.1} {:>7.3}",
            p.label,
            if p.is_solo { "SOLO" } else { "base" },
            p.gflops,
            p.c_iou
        );
    }
}
