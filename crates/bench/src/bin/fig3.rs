//! Regenerates Fig. 3: the gaze/view statistics motivating result reuse.

use solo_bench::{header, maybe_json};
use solo_core::experiments::fig3;

fn main() {
    let stats = fig3(1800, 42); // one minute of 30 Hz video
    if maybe_json(&stats) {
        return;
    }
    header("Fig. 3 — user gaze study on an Aria-like synthetic video");
    println!(
        "frames below 5% view change : {:.1}%   (paper: 32%)",
        stats.frames_below_view_threshold * 100.0
    );
    println!(
        "gaze steps below 20 px      : {:.1}%   (paper: 87%)",
        stats.gaze_below_threshold * 100.0
    );
    println!("video segments              : {}", stats.segment_count);
    println!(
        "mean segment length         : {:.1} frames",
        stats.mean_segment_len
    );
}
