//! Regenerates Fig. 14 (a): per-stage latency breakdowns.

use solo_bench::{header, maybe_json};
use solo_core::experiments::fig14a;

fn main() {
    let rows = fig14a();
    if maybe_json(&rows) {
        return;
    }
    header("Fig. 14 (a) — latency breakdown (ms)");
    println!(
        "{:<12} {:<10} {:>13} {:>8} {:>13} {:>8}",
        "workload", "pipeline", "sensing+MIPI", "ESNet", "segmentation", "total"
    );
    for r in &rows {
        println!(
            "{:<12} {:<10} {:>13.1} {:>8.1} {:>13.1} {:>8.1}",
            r.workload, r.pipeline, r.sensing_mipi_ms, r.esnet_ms, r.segmentation_ms, r.total_ms
        );
    }
}
