//! Records the speculation sweep archived in `BENCH_streaming.json`: the
//! speculate→commit frame protocol over K (candidates) × saccade-rate
//! preset × frame deadline with the oracle forecaster, plus the
//! learned-predictor rows, each reporting modeled sensor-to-display
//! latency with and without prediction. Regenerate with
//! `cargo run --release -p solo-bench --bin streaming -- --json`.
//!
//! With `--check <path>` the binary instead parses an archived record and
//! asserts its invariants: the grid is complete, K = 0 rows never save
//! latency, pre-warm is always charged when candidates were pre-warmed,
//! and on the saccade-heavy preset committed hits display strictly faster
//! than the reactive frame.

use serde::{Deserialize, Serialize};
use solo_bench::{header, maybe_json};
use solo_core::experiments::speculation::{DEADLINES_MS, KS, PRESETS};
use solo_core::experiments::{speculation_learned, speculation_sweep, SpeculationRow};

/// The archived record: sweep provenance plus every row.
#[derive(Serialize, Deserialize)]
struct Record {
    frames: usize,
    seed: u64,
    rows: Vec<SpeculationRow>,
}

/// Parses `path` and asserts the archived sweep's invariants, returning
/// the number of violations.
fn check(path: &str) -> usize {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read record {path}: {e}"));
    let record: Record =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse record {path}: {e}"));
    let mut bad = 0usize;
    let oracle_grid = PRESETS.len() * KS.len() * DEADLINES_MS.len();
    let oracle_rows = record
        .rows
        .iter()
        .filter(|r| r.speculator == "oracle")
        .count();
    if oracle_rows != oracle_grid {
        println!("incomplete oracle grid: {oracle_rows} rows, expected {oracle_grid}");
        bad += 1;
    }
    for r in &record.rows {
        if r.k == 0 && (r.speculated_frames != 0 || r.latency_saved_ms != 0.0) {
            println!("{}/k=0: speculated or saved latency", r.preset);
            bad += 1;
        }
        if r.speculated_frames > 0 && r.prewarm_latency_ms <= 0.0 {
            println!("{}/k={}: pre-warm went uncharged", r.preset, r.k);
            bad += 1;
        }
        if r.committed > 0 && r.hit_latency_ms >= r.reactive_run_latency_ms {
            println!(
                "{}/k={}: hit latency {} ms not below reactive {} ms",
                r.preset, r.k, r.hit_latency_ms, r.reactive_run_latency_ms
            );
            bad += 1;
        }
    }
    let hot_saves = record.rows.iter().any(|r| {
        r.preset == "saccade-heavy"
            && r.speculator == "oracle"
            && r.k >= 1
            && r.deadline_ms == 0.0
            && r.committed > 0
            && r.latency_saved_ms > 0.0
    });
    if !hot_saves {
        println!("no saccade-heavy oracle row with committed hits and saved latency");
        bad += 1;
    }
    println!("{}: {} rows, {} violation(s)", path, record.rows.len(), bad);
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check requires a path").clone();
        if check(&path) > 0 {
            std::process::exit(1);
        }
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let frames = if quick { 240 } else { 900 };
    let seed = 11;
    let mut rows = speculation_sweep(frames, seed);
    rows.extend(speculation_learned(frames, 3, seed));
    let record = Record { frames, seed, rows };
    if maybe_json(&record) {
        return;
    }

    header("Speculation sweep — K × saccade rate × deadline");
    println!(
        "{:<14} {:<8} {:>2} {:>9} {:>6} {:>5} {:>5} {:>8} {:>10} {:>10} {:>9}",
        "preset",
        "forecast",
        "K",
        "deadline",
        "spec",
        "hit",
        "miss",
        "hit-rate",
        "with (ms)",
        "w/o (ms)",
        "saved"
    );
    for r in &record.rows {
        let deadline = if r.deadline_ms == 0.0 {
            "inf".to_string()
        } else {
            format!("{:.0} ms", r.deadline_ms)
        };
        println!(
            "{:<14} {:<8} {:>2} {:>9} {:>6} {:>5} {:>5} {:>7.0}% {:>10.2} {:>10.2} {:>8.2}",
            r.preset,
            r.speculator,
            r.k,
            deadline,
            r.speculated_frames,
            r.committed,
            r.missed,
            r.hit_rate * 100.0,
            r.latency_with_prediction_ms,
            r.latency_without_prediction_ms,
            r.latency_saved_ms
        );
    }
}
