//! Regenerates Fig. 17: the simulated 2IFC user study.

use solo_bench::{header, maybe_json};
use solo_core::experiments::fig17;

fn main() {
    let report = fig17(6);
    if maybe_json(&report) {
        return;
    }
    header("Fig. 17 — simulated user study (SOLO 42.6 ms vs FR+GPU 547 ms)");
    for (i, p) in report.per_user_preference.iter().enumerate() {
        println!("user {}: {:>5.1}% prefer SOLO", i + 1, p * 100.0);
    }
    println!(
        "total : {:>5.1}% prefer SOLO (paper: 96% ± 6%), one-sided binomial p = {:.2e}",
        report.total_preference * 100.0,
        report.p_value
    );
}
