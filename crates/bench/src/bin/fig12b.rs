//! Regenerates Fig. 12 (b): SSA frame-skip fraction and c-IoU across
//! (α, β) settings, with a freshly trained SOLO pipeline.

use solo_bench::{header, maybe_json};
use solo_core::experiments::{fig12b, Budget};

fn main() {
    let (budget, frames) = if std::env::args().any(|a| a == "--quick") {
        (Budget::quick(), 120)
    } else {
        (Budget::full(), 600)
    };
    let points = fig12b(&budget, frames, 3);
    if maybe_json(&points) {
        return;
    }
    header("Fig. 12 (b) — SSA reuse: skip fraction vs c-IoU");
    println!(
        "{:>7} {:>7} {:>11} {:>7}",
        "alpha", "beta", "skipped", "c-IoU"
    );
    for p in &points {
        println!(
            "{:>7.2} {:>7.0} {:>10.1}% {:>7.3}",
            p.alpha,
            p.beta_px,
            p.skip_fraction * 100.0,
            p.c_iou
        );
    }
}
