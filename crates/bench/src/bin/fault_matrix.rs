//! The fault-matrix robustness sweep: gaze-dropout rate x frame deadline
//! over the four scene presets, with per-rung oracle accuracy.

use solo_bench::{header, maybe_json};
use solo_core::experiments::fault_matrix;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let frames = if quick { 120 } else { 600 };
    let rates: &[f64] = if quick {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 1.0]
    };
    let deadlines: &[f64] = if quick { &[60.0] } else { &[30.0, 60.0, 120.0] };
    let points = match fault_matrix(frames, 4, rates, deadlines) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("fault_matrix failed: {e}");
            std::process::exit(1);
        }
    };
    if maybe_json(&points) {
        return;
    }
    header("Fault matrix — dropout rate x deadline, degradation ladder");
    println!(
        "{:>6} {:>5} {:>6} {:>6} {:>7} {:>7} {:>7}  {:<18} {:<30}",
        "preset", "rate", "dl ms", "skip", "degr", "ovrun", "lat ms", "rung frames", "rung b-IoU"
    );
    for p in &points {
        let frames: Vec<String> = p.rung_frames.iter().map(|f| f.to_string()).collect();
        let bious: Vec<String> = p.rung_b_iou.iter().map(|b| format!("{b:.2}")).collect();
        println!(
            "{:>6} {:>5.2} {:>6.0} {:>5.1}% {:>6.1}% {:>6.1}% {:>7.2}  {:<18} {:<30}",
            p.preset,
            p.dropout_rate,
            p.deadline_ms,
            p.skip_fraction * 100.0,
            p.degraded_fraction * 100.0,
            p.overrun_fraction * 100.0,
            p.mean_latency_ms,
            frames.join("/"),
            bious.join("/")
        );
    }
}
