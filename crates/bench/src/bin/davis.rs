//! Regenerates the Section 6.6 DAVIS-2016 robustness study.

use solo_bench::{header, maybe_json};
use solo_core::experiments::{davis_eval, Budget};

fn main() {
    let (budget, frames) = if std::env::args().any(|a| a == "--quick") {
        (Budget::quick(), 120)
    } else {
        (Budget::full(), 600)
    };
    let r = davis_eval(&budget, frames, 8);
    if maybe_json(&r) {
        return;
    }
    header("Section 6.6 — DAVIS-like dynamic scenes");
    println!(
        "SOLO (HR)     : b-IoU {:.3}  c-IoU {:.3}   (paper: 0.56 / 0.49)",
        r.solo_b_iou, r.solo_c_iou
    );
    println!(
        "full-frame    : b-IoU {:.3}  c-IoU {:.3}   (paper M2F-S-L: 0.44 / 0.41)",
        r.comparator_b_iou, r.comparator_c_iou
    );
    println!(
        "SSA skip      : {:.1}%   (paper: 13%)   c-IoU with reuse: {:.3}",
        r.skip_fraction * 100.0,
        r.ssa_c_iou
    );
    println!(
        "mean latency  : {:.1} ms (paper: 28.7 ms within the 50 ms budget)",
        r.mean_latency_ms
    );
}
