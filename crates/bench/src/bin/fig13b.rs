//! Regenerates Fig. 13 (b): speedup and energy saving of every pipeline
//! configuration over FR+GPU.

use solo_bench::{header, maybe_json};
use solo_core::experiments::fig13b;

fn main() {
    let rows = fig13b();
    if maybe_json(&rows) {
        return;
    }
    header("Fig. 13 (b) — speedup (×) and energy saving (×) vs FR+GPU");
    println!(
        "{:<5} {:<6} {}",
        "model",
        "data",
        rows[0]
            .entries
            .iter()
            .map(|(n, _, _)| format!("{n:>16}"))
            .collect::<String>()
    );
    for row in &rows {
        print!("{:<5} {:<6}", row.backbone, row.dataset);
        for (_, speedup, saving) in &row.entries {
            print!("{:>16}", format!("{speedup:.1}x/{saving:.1}x"));
        }
        println!();
    }
    // Paper headline: SOLO averages 8.6× speedup, 9.1× energy saving.
    let (mut s, mut e, mut n) = (0.0, 0.0, 0);
    for row in &rows {
        if let Some((_, sp, sv)) = row.entries.iter().find(|(name, _, _)| name == "SOLO") {
            s += sp;
            e += sv;
            n += 1;
        }
    }
    println!(
        "\nSOLO mean: {:.1}x speedup, {:.1}x energy saving (paper: 8.6x / 9.1x)",
        s / n as f64,
        e / n as f64
    );
}
