//! Records the execution-layer kernel baseline archived in
//! `BENCH_kernels.json`: the GEMM family (blocked and naive reference),
//! conv forward/backward, elementwise/reduction kernels, attention and
//! the foveated samplers, at pool widths 1/2/4, plus the host
//! parallelism the numbers were taken under. Regenerate with
//! `cargo run --release -p solo-bench --bin kernels -- --json`.
//!
//! Widths are forced through [`exec::with_threads`] so the measurements
//! do not depend on `SOLO_THREADS`; on a single-core host the wide
//! variants measure dispatch overhead rather than speedup, which is why
//! `host_threads` (and the derived `degraded_host` flag) is part of the
//! record.

use std::time::Instant;

use serde::Serialize;
use solo_bench::{header, maybe_json};
use solo_nn::{Conv2d, Layer, MultiHeadAttention};
use solo_sampler::{gaze_saliency, IndexMap, SamplerSpec};
use solo_tensor::{exec, normal, seeded_rng, Tensor};

const WIDTHS: [usize; 3] = [1, 2, 4];
const ITERS: usize = 12;

/// One kernel timed at one pool width.
#[derive(Serialize)]
struct Measurement {
    kernel: String,
    width: usize,
    median_us: f64,
    speedup_vs_serial: f64,
}

/// The whole baseline: host context plus every measurement.
#[derive(Serialize)]
struct Baseline {
    host_threads: usize,
    /// True when the host exposes a single hardware thread: every width
    /// above 1 then measures dispatch overhead, not parallel speedup, and
    /// the record must not be compared against multi-core baselines.
    degraded_host: bool,
    pool_width_default: usize,
    iterations: usize,
    measurements: Vec<Measurement>,
}

/// Median wall time of `f` over [`ITERS`] runs, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Times `f` at each width in [`WIDTHS`], deriving speedups vs width 1.
fn sweep(kernel: &str, out: &mut Vec<Measurement>, mut f: impl FnMut()) {
    let mut serial = 0.0;
    for w in WIDTHS {
        let us = median_us(|| exec::with_threads(w, &mut f));
        if w == 1 {
            serial = us;
        }
        out.push(Measurement {
            kernel: kernel.to_string(),
            width: w,
            median_us: us,
            speedup_vs_serial: if us > 0.0 { serial / us } else { 0.0 },
        });
    }
}

fn main() {
    let mut measurements = Vec::new();

    let a = normal(&mut seeded_rng(1), &[128, 128], 0.0, 1.0);
    let b = normal(&mut seeded_rng(2), &[128, 128], 0.0, 1.0);
    sweep("matmul_systolic_128", &mut measurements, || {
        a.matmul(&b).recycle();
    });

    let a = normal(&mut seeded_rng(1), &[64, 288], 0.0, 1.0);
    let b = normal(&mut seeded_rng(2), &[288, 576], 0.0, 1.0);
    sweep("matmul_backbone_gemm", &mut measurements, || {
        a.matmul(&b).recycle();
    });
    // The retained i-k-j reference kernel: the before/after yardstick for
    // the blocked GEMM above.
    sweep("matmul_backbone_gemm_naive", &mut measurements, || {
        a.matmul_reference(&b).recycle();
    });

    let x = normal(&mut seeded_rng(3), &[8, 48, 48], 0.0, 1.0);
    let mut conv = Conv2d::new(&mut seeded_rng(4), 8, 16, 3);
    sweep("conv_fwd_8x16_k3_48", &mut measurements, || {
        conv.forward(&x).recycle();
    });

    let mut conv = Conv2d::new(&mut seeded_rng(5), 8, 16, 3);
    let g = Tensor::ones(conv.forward(&x).shape().dims());
    sweep("conv_bwd_8x16_k3_48", &mut measurements, || {
        conv.forward(&x).recycle();
        conv.backward(&g).recycle();
    });

    // Elementwise map over a backbone-activation-sized tensor.
    let t = normal(&mut seeded_rng(6), &[512, 512], 0.0, 1.0);
    sweep("map_gelu_512x512", &mut measurements, || {
        t.map(|v| 0.5 * v * (1.0 + (0.797_884_6 * (v + 0.044_715 * v * v * v)).tanh()))
            .recycle();
    });

    // Reductions: in-order chunked dot and argmax over 1M elements.
    let u = normal(&mut seeded_rng(7), &[1 << 20], 0.0, 1.0);
    let v = normal(&mut seeded_rng(8), &[1 << 20], 0.0, 1.0);
    sweep("dot_1m", &mut measurements, || {
        std::hint::black_box(u.dot(&v));
    });
    sweep("argmax_1m", &mut measurements, || {
        std::hint::black_box(u.argmax());
    });

    // Attention at a GT-ViT-ish token count (per-head loop fan-out).
    let mut mha = MultiHeadAttention::new(&mut seeded_rng(9), 64, 4);
    let seq = normal(&mut seeded_rng(10), &[64, 64], 0.0, 1.0);
    sweep("attention_fwd_t64_d64h4", &mut measurements, || {
        mha.infer(&seq).recycle();
    });
    let gseq = Tensor::ones(&[64, 64]);
    sweep("attention_bwd_t64_d64h4", &mut measurements, || {
        mha.forward(&seq).recycle();
        mha.backward(&gseq).recycle();
    });

    // Foveated samplers: bilinear downsample and the Voronoi upsample.
    let spec = SamplerSpec::new(128, 128, 32, 32, 16.0);
    let map = IndexMap::from_saliency(&spec, &gaze_saliency(32, 32, (0.5, 0.5), 0.12, 0.02));
    let img = normal(&mut seeded_rng(11), &[3, 128, 128], 0.0, 1.0);
    sweep("sampler_bilinear_128_to_32", &mut measurements, || {
        map.sample_bilinear(&img).recycle();
    });
    let small = normal(&mut seeded_rng(12), &[3, 32, 32], 0.0, 1.0);
    sweep("sampler_upsample_32_to_128", &mut measurements, || {
        map.upsample(&small).recycle();
    });

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let baseline = Baseline {
        host_threads,
        degraded_host: host_threads == 1,
        pool_width_default: exec::pool().width(),
        iterations: ITERS,
        measurements,
    };
    if baseline.degraded_host {
        eprintln!(
            "WARNING: single-threaded host ({} hardware thread) — widths > 1 measure \
             dispatch overhead, not parallel speedup; do not compare this record \
             against multi-core baselines (degraded_host=true in the JSON).",
            baseline.host_threads
        );
    }
    if maybe_json(&baseline) {
        return;
    }
    header("Execution-layer kernel baseline");
    println!(
        "host threads: {}   pool width: {}   degraded host: {}",
        baseline.host_threads, baseline.pool_width_default, baseline.degraded_host
    );
    println!(
        "{:<28}{:>7}{:>14}{:>10}",
        "kernel", "width", "median (µs)", "speedup"
    );
    for m in &baseline.measurements {
        println!(
            "{:<28}{:>7}{:>14.1}{:>10.2}",
            m.kernel, m.width, m.median_us, m.speedup_vs_serial
        );
    }
}
