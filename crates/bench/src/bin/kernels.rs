//! Records the execution-layer kernel baseline archived in
//! `BENCH_kernels.json`: the GEMM family (blocked, naive reference, and
//! the transposed-operand entry points), conv forward/backward on both
//! the implicit-GEMM and materialized-im2col paths, elementwise/reduction
//! kernels, attention and the foveated samplers, at pool widths 1/2/4,
//! plus the host parallelism the numbers were taken under and the
//! buffer-pool scratch accounting per allocation site. Regenerate with
//! `cargo run --release -p solo-bench --bin kernels -- --json`.
//!
//! With `--baseline <path>` the binary instead diffs a fresh run against
//! an archived record (e.g. `BENCH_kernels.json`), printing the per-kernel
//! deltas and flagging regressions. When either record carries
//! `degraded_host` (a single-hardware-thread host), widths above 1 measure
//! dispatch overhead rather than speedup, so only width-1 rows count as
//! authoritative regressions; wider rows are reported as informational.
//!
//! Widths are forced through [`exec::with_threads`] so the measurements
//! do not depend on `SOLO_THREADS`; on a single-core host the wide
//! variants measure dispatch overhead rather than speedup, which is why
//! `host_threads` (and the derived `degraded_host` flag) is part of the
//! record.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use solo_bench::{header, maybe_json};
use solo_nn::{Conv2d, Layer, MultiHeadAttention};
use solo_sampler::{gaze_saliency, IndexMap, SamplerSpec};
use solo_tensor::{
    exec, im2col, normal, seeded_rng, Im2ColSpec, PackedMatrix, QPackedMatrix, Tensor,
};

const WIDTHS: [usize; 3] = [1, 2, 4];
const ITERS: usize = 12;
/// A fresh median this much slower than the archived one is a regression.
const REGRESSION_PCT: f64 = 20.0;

/// One kernel timed at one pool width.
#[derive(Serialize, Deserialize)]
struct Measurement {
    kernel: String,
    width: usize,
    median_us: f64,
    speedup_vs_serial: f64,
}

/// One buffer-pool allocation site's scratch accounting, snapshotted from
/// [`exec::site_stats`] after the sweeps.
#[derive(Serialize, Deserialize)]
struct ScratchSite {
    site: String,
    takes: u64,
    total_bytes: u64,
    peak_bytes: u64,
}

/// The whole baseline: host context plus every measurement.
#[derive(Serialize, Deserialize)]
struct Baseline {
    host_threads: usize,
    /// True when the host exposes a single hardware thread: every width
    /// above 1 then measures dispatch overhead, not parallel speedup, and
    /// the record must not be compared against multi-core baselines.
    degraded_host: bool,
    pool_width_default: usize,
    iterations: usize,
    measurements: Vec<Measurement>,
    /// Per-site pooled-scratch accounting accumulated over the whole run —
    /// `gemm.pack_im2col` vs `linalg.im2col` shows the implicit-GEMM path
    /// displacing materialized column matrices.
    scratch_sites: Vec<ScratchSite>,
}

/// Median wall time of `f` over [`ITERS`] runs, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Times `f` at each width in [`WIDTHS`], deriving speedups vs width 1.
fn sweep(kernel: &str, out: &mut Vec<Measurement>, mut f: impl FnMut()) {
    let mut serial = 0.0;
    for w in WIDTHS {
        let us = median_us(|| exec::with_threads(w, &mut f));
        if w == 1 {
            serial = us;
        }
        out.push(Measurement {
            kernel: kernel.to_string(),
            width: w,
            median_us: us,
            speedup_vs_serial: if us > 0.0 { serial / us } else { 0.0 },
        });
    }
}

/// Runs every kernel sweep, returning the full record for this host.
fn measure() -> Baseline {
    let mut measurements = Vec::new();

    let a = normal(&mut seeded_rng(1), &[128, 128], 0.0, 1.0);
    let b = normal(&mut seeded_rng(2), &[128, 128], 0.0, 1.0);
    sweep("matmul_systolic_128", &mut measurements, || {
        a.matmul(&b).recycle();
    });

    let a = normal(&mut seeded_rng(1), &[64, 288], 0.0, 1.0);
    let b = normal(&mut seeded_rng(2), &[288, 576], 0.0, 1.0);
    sweep("matmul_backbone_gemm", &mut measurements, || {
        a.matmul(&b).recycle();
    });
    // The retained i-k-j reference kernel: the before/after yardstick for
    // the blocked GEMM above.
    sweep("matmul_backbone_gemm_naive", &mut measurements, || {
        a.matmul_reference(&b).recycle();
    });
    // Transposed-operand entry points at the same GEMM volume: these pack
    // the transposed operand straight from its source rows, so their cost
    // against `matmul_backbone_gemm` is the price of killing the explicit
    // backward-pass transposes.
    let bt = normal(&mut seeded_rng(2), &[576, 288], 0.0, 1.0);
    sweep("matmul_at_backbone_gemm", &mut measurements, || {
        a.matmul_at(&bt).recycle();
    });
    let at = normal(&mut seeded_rng(1), &[288, 64], 0.0, 1.0);
    sweep("matmul_ta_backbone_gemm", &mut measurements, || {
        at.matmul_ta(&b).recycle();
    });

    let x = normal(&mut seeded_rng(3), &[8, 48, 48], 0.0, 1.0);
    let mut conv = Conv2d::new(&mut seeded_rng(4), 8, 16, 3);
    sweep("conv_fwd_8x16_k3_48", &mut measurements, || {
        conv.forward(&x).recycle();
    });
    // The materialized-im2col yardstick at the same shape: what the conv
    // forward cost before the implicit-GEMM path, and what it still costs
    // below the blocked threshold.
    let spec = Im2ColSpec {
        channels: 8,
        height: 48,
        width: 48,
        kernel: 3,
        stride: 1,
        padding: 1,
        dilation: 1,
    };
    let w = normal(&mut seeded_rng(4), &[16, spec.patch_rows()], 0.0, 1.0);
    let packed = PackedMatrix::pack_lhs(&w);
    sweep(
        "conv_fwd_materialized_8x16_k3_48",
        &mut measurements,
        || {
            let cols = im2col(&x, &spec);
            packed.matmul(&cols).recycle();
            cols.recycle();
        },
    );

    let mut conv = Conv2d::new(&mut seeded_rng(5), 8, 16, 3);
    let g = Tensor::ones(conv.forward(&x).shape().dims());
    sweep("conv_bwd_8x16_k3_48", &mut measurements, || {
        conv.forward(&x).recycle();
        conv.backward(&g).recycle();
    });

    // Elementwise map over a backbone-activation-sized tensor.
    let t = normal(&mut seeded_rng(6), &[512, 512], 0.0, 1.0);
    sweep("map_gelu_512x512", &mut measurements, || {
        t.map(|v| 0.5 * v * (1.0 + (0.797_884_6 * (v + 0.044_715 * v * v * v)).tanh()))
            .recycle();
    });

    // Reductions: in-order chunked dot and argmax over 1M elements.
    let u = normal(&mut seeded_rng(7), &[1 << 20], 0.0, 1.0);
    let v = normal(&mut seeded_rng(8), &[1 << 20], 0.0, 1.0);
    sweep("dot_1m", &mut measurements, || {
        std::hint::black_box(u.dot(&v));
    });
    sweep("argmax_1m", &mut measurements, || {
        std::hint::black_box(u.argmax());
    });

    // Attention at a GT-ViT-ish token count (per-head loop fan-out).
    let mut mha = MultiHeadAttention::new(&mut seeded_rng(9), 64, 4);
    let seq = normal(&mut seeded_rng(10), &[64, 64], 0.0, 1.0);
    sweep("attention_fwd_t64_d64h4", &mut measurements, || {
        mha.infer(&seq).recycle();
    });
    let gseq = Tensor::ones(&[64, 64]);
    sweep("attention_bwd_t64_d64h4", &mut measurements, || {
        mha.forward(&seq).recycle();
        mha.backward(&gseq).recycle();
    });

    // Foveated samplers: bilinear downsample and the Voronoi upsample.
    let spec = SamplerSpec::new(128, 128, 32, 32, 16.0);
    let map = IndexMap::from_saliency(&spec, &gaze_saliency(32, 32, (0.5, 0.5), 0.12, 0.02));
    let img = normal(&mut seeded_rng(11), &[3, 128, 128], 0.0, 1.0);
    sweep("sampler_bilinear_128_to_32", &mut measurements, || {
        map.sample_bilinear(&img).recycle();
    });
    let small = normal(&mut seeded_rng(12), &[3, 32, 32], 0.0, 1.0);
    sweep("sampler_upsample_32_to_128", &mut measurements, || {
        map.upsample(&small).recycle();
    });

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    Baseline {
        host_threads,
        degraded_host: host_threads == 1,
        pool_width_default: exec::pool().width(),
        iterations: ITERS,
        measurements,
        scratch_sites: exec::site_stats()
            .into_iter()
            .map(|s| ScratchSite {
                site: s.site.to_string(),
                takes: s.takes,
                total_bytes: s.total_bytes,
                peak_bytes: s.peak_bytes,
            })
            .collect(),
    }
}

/// Diffs `fresh` against the archived `old` record, printing per-kernel
/// deltas and returning the number of authoritative regressions.
fn diff(old: &Baseline, fresh: &Baseline) -> usize {
    header("Kernel baseline diff (fresh vs archived)");
    let degraded = old.degraded_host || fresh.degraded_host;
    if degraded {
        println!(
            "note: degraded host in at least one record — widths > 1 measure \
             dispatch overhead, so only width-1 rows count as regressions"
        );
    }
    println!(
        "{:<34}{:>7}{:>12}{:>12}{:>9}  {}",
        "kernel", "width", "old (µs)", "new (µs)", "delta", "verdict"
    );
    let mut regressions = 0;
    for m in &fresh.measurements {
        let Some(prev) = old
            .measurements
            .iter()
            .find(|p| p.kernel == m.kernel && p.width == m.width)
        else {
            println!(
                "{:<34}{:>7}{:>12}{:>12.1}{:>9}  new kernel",
                m.kernel, m.width, "-", m.median_us, "-"
            );
            continue;
        };
        let pct = if prev.median_us > 0.0 {
            (m.median_us - prev.median_us) / prev.median_us * 100.0
        } else {
            0.0
        };
        let authoritative = !degraded || m.width == 1;
        let verdict = if pct > REGRESSION_PCT && authoritative {
            regressions += 1;
            "REGRESSION"
        } else if pct > REGRESSION_PCT {
            "slower (informational)"
        } else if pct < -REGRESSION_PCT {
            "faster"
        } else {
            "ok"
        };
        println!(
            "{:<34}{:>7}{:>12.1}{:>12.1}{:>+8.1}%  {}",
            m.kernel, m.width, prev.median_us, m.median_us, pct, verdict
        );
    }
    for prev in &old.measurements {
        if !fresh
            .measurements
            .iter()
            .any(|m| m.kernel == prev.kernel && m.width == prev.width)
        {
            println!(
                "{:<34}{:>7}{:>12.1}{:>12}{:>9}  removed kernel",
                prev.kernel, prev.width, prev.median_us, "-", "-"
            );
        }
    }
    println!(
        "{} authoritative regression{} (> {REGRESSION_PCT:.0}% slower)",
        regressions,
        if regressions == 1 { "" } else { "s" }
    );
    regressions
}

/// One f32-vs-i8 kernel pair timed at one pool width, archived in
/// `BENCH_quant.json`.
#[derive(Serialize, Deserialize)]
struct QuantMeasurement {
    kernel: String,
    width: usize,
    f32_us: f64,
    i8_us: f64,
    speedup_i8_vs_f32: f64,
}

/// The quantized-kernel record: host context plus every f32-vs-i8 pair.
#[derive(Serialize, Deserialize)]
struct QuantBaseline {
    host_threads: usize,
    /// Same meaning as [`Baseline::degraded_host`]: on a one-thread host,
    /// widths above 1 measure dispatch overhead, not speedup.
    degraded_host: bool,
    pool_width_default: usize,
    iterations: usize,
    measurements: Vec<QuantMeasurement>,
}

/// The backbone-GEMM row the acceptance gate pins: width-1 i8 must beat
/// f32 by at least this factor in the archived record.
const QUANT_GEMM_KERNEL: &str = "gemm_backbone_64x288x576";
const QUANT_CONV_KERNEL: &str = "conv_im2col_8x16_k3_48";
const QUANT_MIN_GEMM_SPEEDUP: f64 = 1.5;

/// Times an f32/i8 kernel pair at each width in [`WIDTHS`].
fn quant_sweep(
    kernel: &str,
    out: &mut Vec<QuantMeasurement>,
    mut f32_f: impl FnMut(),
    mut i8_f: impl FnMut(),
) {
    for w in WIDTHS {
        let f32_us = median_us(|| exec::with_threads(w, &mut f32_f));
        let i8_us = median_us(|| exec::with_threads(w, &mut i8_f));
        out.push(QuantMeasurement {
            kernel: kernel.to_string(),
            width: w,
            f32_us,
            i8_us,
            speedup_i8_vs_f32: if i8_us > 0.0 { f32_us / i8_us } else { 0.0 },
        });
    }
}

/// Runs the i8-vs-f32 sweeps on the backbone GEMM and implicit-conv
/// shapes. Both sides run the packed-weight inference call shape: weights
/// pre-packed (the `PackedCache` steady state), activations packed —
/// and, on the i8 side, quantized — on the fly per call.
fn measure_quant() -> QuantBaseline {
    let mut measurements = Vec::new();

    // Backbone-shaped Linear GEMM: x [64,288] · Wᵀ with W [576,288].
    let x = normal(&mut seeded_rng(1), &[64, 288], 0.0, 1.0);
    let w = normal(&mut seeded_rng(2), &[576, 288], 0.0, 1.0);
    let pf = PackedMatrix::pack_rhs_transposed(&w);
    let pq = QPackedMatrix::pack_rhs_transposed(&w);
    quant_sweep(
        QUANT_GEMM_KERNEL,
        &mut measurements,
        || x.matmul_packed(&pf).recycle(),
        || x.qmatmul_packed(&pq).recycle(),
    );

    // Implicit-GEMM conv forward, 8→16 k3 on a [8,48,48] activation.
    let img = normal(&mut seeded_rng(3), &[8, 48, 48], 0.0, 1.0);
    let spec = Im2ColSpec {
        channels: 8,
        height: 48,
        width: 48,
        kernel: 3,
        stride: 1,
        padding: 1,
        dilation: 1,
    };
    let wc = normal(&mut seeded_rng(4), &[16, spec.patch_rows()], 0.0, 1.0);
    let cf = PackedMatrix::pack_lhs(&wc);
    let cq = QPackedMatrix::pack_lhs(&wc);
    quant_sweep(
        QUANT_CONV_KERNEL,
        &mut measurements,
        || cf.matmul_im2col(&img, &spec).recycle(),
        || cq.qmatmul_im2col(&img, &spec).recycle(),
    );

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    QuantBaseline {
        host_threads,
        degraded_host: host_threads == 1,
        pool_width_default: exec::pool().width(),
        iterations: ITERS,
        measurements,
    }
}

/// Diffs a fresh quant run against the archived record: a fresh `i8_us`
/// more than [`REGRESSION_PCT`] slower is a regression (width-1 only on a
/// degraded host, exactly like [`diff`]).
fn diff_quant(old: &QuantBaseline, fresh: &QuantBaseline) -> usize {
    header("Quantized kernel diff (fresh vs archived)");
    let degraded = old.degraded_host || fresh.degraded_host;
    if degraded {
        println!(
            "note: degraded host in at least one record — widths > 1 measure \
             dispatch overhead, so only width-1 rows count as regressions"
        );
    }
    println!(
        "{:<28}{:>7}{:>12}{:>12}{:>9}  {}",
        "kernel", "width", "old i8(µs)", "new i8(µs)", "delta", "verdict"
    );
    let mut regressions = 0;
    for m in &fresh.measurements {
        let Some(prev) = old
            .measurements
            .iter()
            .find(|p| p.kernel == m.kernel && p.width == m.width)
        else {
            println!(
                "{:<28}{:>7}{:>12}{:>12.1}{:>9}  new kernel",
                m.kernel, m.width, "-", m.i8_us, "-"
            );
            continue;
        };
        let pct = if prev.i8_us > 0.0 {
            (m.i8_us - prev.i8_us) / prev.i8_us * 100.0
        } else {
            0.0
        };
        let authoritative = !degraded || m.width == 1;
        let verdict = if pct > REGRESSION_PCT && authoritative {
            regressions += 1;
            "REGRESSION"
        } else if pct > REGRESSION_PCT {
            "slower (informational)"
        } else if pct < -REGRESSION_PCT {
            "faster"
        } else {
            "ok"
        };
        println!(
            "{:<28}{:>7}{:>12.1}{:>12.1}{:>+8.1}%  {}",
            m.kernel, m.width, prev.i8_us, m.i8_us, pct, verdict
        );
    }
    println!(
        "{} authoritative regression{} (> {REGRESSION_PCT:.0}% slower)",
        regressions,
        if regressions == 1 { "" } else { "s" }
    );
    regressions
}

/// Structural validation of an archived `BENCH_quant.json` — no
/// re-measurement, so it is timing-flake-free for CI: the record must
/// parse, carry both sweep kernels at every width, and its archived
/// width-1 backbone-GEMM speedup must clear the acceptance bar.
fn check_quant(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rec: QuantBaseline =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    for kernel in [QUANT_GEMM_KERNEL, QUANT_CONV_KERNEL] {
        for width in WIDTHS {
            let m = rec
                .measurements
                .iter()
                .find(|m| m.kernel == kernel && m.width == width)
                .ok_or_else(|| format!("{path}: missing {kernel} at width {width}"))?;
            if !(m.f32_us.is_finite() && m.i8_us.is_finite() && m.i8_us > 0.0) {
                return Err(format!("{path}: non-finite timing for {kernel} w{width}"));
            }
            let derived = m.f32_us / m.i8_us;
            if (m.speedup_i8_vs_f32 - derived).abs() > 1e-6 * derived.max(1.0) {
                return Err(format!(
                    "{path}: {kernel} w{width} speedup column disagrees with timings"
                ));
            }
        }
    }
    let gemm1 = rec
        .measurements
        .iter()
        .find(|m| m.kernel == QUANT_GEMM_KERNEL && m.width == 1)
        .ok_or_else(|| format!("{path}: missing width-1 GEMM row"))?;
    if gemm1.speedup_i8_vs_f32 < QUANT_MIN_GEMM_SPEEDUP {
        return Err(format!(
            "{path}: archived width-1 i8 GEMM speedup {:.2}× is below the {:.1}× bar",
            gemm1.speedup_i8_vs_f32, QUANT_MIN_GEMM_SPEEDUP
        ));
    }
    if rec.host_threads == 1 && !rec.degraded_host {
        return Err(format!(
            "{path}: one-thread host must be recorded with degraded_host=true"
        ));
    }
    println!(
        "{path}: ok — {} rows, width-1 i8 GEMM speedup {:.2}× (bar {:.1}×), degraded_host={}",
        rec.measurements.len(),
        gemm1.speedup_i8_vs_f32,
        QUANT_MIN_GEMM_SPEEDUP,
        rec.degraded_host
    );
    Ok(())
}

/// Entry point for `--quant`: record, diff (`--baseline`) or validate
/// (`--check`) the i8-vs-f32 sweeps.
fn quant_main(args: &[String]) {
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check requires a path");
        if let Err(e) = check_quant(path) {
            eprintln!("BENCH_quant check failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline requires a path").clone());
    let fresh = measure_quant();
    if fresh.degraded_host {
        eprintln!(
            "WARNING: single-threaded host ({} hardware thread) — widths > 1 measure \
             dispatch overhead, not parallel speedup (degraded_host=true in the JSON).",
            fresh.host_threads
        );
    }
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let old: QuantBaseline = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        if diff_quant(&old, &fresh) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if maybe_json(&fresh) {
        return;
    }
    header("Quantized (i8) vs f32 kernel sweeps");
    println!(
        "host threads: {}   pool width: {}   degraded host: {}",
        fresh.host_threads, fresh.pool_width_default, fresh.degraded_host
    );
    println!(
        "{:<28}{:>7}{:>12}{:>12}{:>10}",
        "kernel", "width", "f32 (µs)", "i8 (µs)", "speedup"
    );
    for m in &fresh.measurements {
        println!(
            "{:<28}{:>7}{:>12.1}{:>12.1}{:>10.2}",
            m.kernel, m.width, m.f32_us, m.i8_us, m.speedup_i8_vs_f32
        );
    }
}

fn main() {
    // `--baseline <path>` switches to diff mode against an archived record.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quant") {
        quant_main(&args);
        return;
    }
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline requires a path").clone());

    let baseline = measure();
    if baseline.degraded_host {
        eprintln!(
            "WARNING: single-threaded host ({} hardware thread) — widths > 1 measure \
             dispatch overhead, not parallel speedup; do not compare this record \
             against multi-core baselines (degraded_host=true in the JSON).",
            baseline.host_threads
        );
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let old: Baseline = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        if diff(&old, &baseline) > 0 {
            std::process::exit(1);
        }
        return;
    }

    if maybe_json(&baseline) {
        return;
    }
    header("Execution-layer kernel baseline");
    println!(
        "host threads: {}   pool width: {}   degraded host: {}",
        baseline.host_threads, baseline.pool_width_default, baseline.degraded_host
    );
    println!(
        "{:<34}{:>7}{:>14}{:>10}",
        "kernel", "width", "median (µs)", "speedup"
    );
    for m in &baseline.measurements {
        println!(
            "{:<34}{:>7}{:>14.1}{:>10.2}",
            m.kernel, m.width, m.median_us, m.speedup_vs_serial
        );
    }
    println!();
    println!("pooled scratch by site (whole run):");
    println!(
        "{:<24}{:>10}{:>16}{:>14}",
        "site", "takes", "total (B)", "peak (B)"
    );
    for s in &baseline.scratch_sites {
        println!(
            "{:<24}{:>10}{:>16}{:>14}",
            s.site, s.takes, s.total_bytes, s.peak_bytes
        );
    }
}
