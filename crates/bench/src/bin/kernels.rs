//! Records the execution-layer kernel baseline archived in
//! `BENCH_kernels.json`: matmul and conv forward/backward wall times at
//! pool widths 1/2/4, plus the host parallelism the numbers were taken
//! under. Regenerate with
//! `cargo run --release -p solo-bench --bin kernels -- --json`.
//!
//! Widths are forced through [`exec::with_threads`] so the measurements
//! do not depend on `SOLO_THREADS`; on a single-core host the wide
//! variants measure dispatch overhead rather than speedup, which is why
//! `host_threads` is part of the record.

use std::time::Instant;

use serde::Serialize;
use solo_bench::{header, maybe_json};
use solo_nn::{Conv2d, Layer};
use solo_tensor::{exec, normal, seeded_rng, Tensor};

const WIDTHS: [usize; 3] = [1, 2, 4];
const ITERS: usize = 12;

/// One kernel timed at one pool width.
#[derive(Serialize)]
struct Measurement {
    kernel: String,
    width: usize,
    median_us: f64,
    speedup_vs_serial: f64,
}

/// The whole baseline: host context plus every measurement.
#[derive(Serialize)]
struct Baseline {
    host_threads: usize,
    pool_width_default: usize,
    iterations: usize,
    measurements: Vec<Measurement>,
}

/// Median wall time of `f` over [`ITERS`] runs, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Times `f` at each width in [`WIDTHS`], deriving speedups vs width 1.
fn sweep(kernel: &str, out: &mut Vec<Measurement>, mut f: impl FnMut()) {
    let mut serial = 0.0;
    for w in WIDTHS {
        let us = median_us(|| exec::with_threads(w, &mut f));
        if w == 1 {
            serial = us;
        }
        out.push(Measurement {
            kernel: kernel.to_string(),
            width: w,
            median_us: us,
            speedup_vs_serial: if us > 0.0 { serial / us } else { 0.0 },
        });
    }
}

fn main() {
    let mut measurements = Vec::new();

    let a = normal(&mut seeded_rng(1), &[128, 128], 0.0, 1.0);
    let b = normal(&mut seeded_rng(2), &[128, 128], 0.0, 1.0);
    sweep("matmul_systolic_128", &mut measurements, || {
        a.matmul(&b).recycle();
    });

    let a = normal(&mut seeded_rng(1), &[64, 288], 0.0, 1.0);
    let b = normal(&mut seeded_rng(2), &[288, 576], 0.0, 1.0);
    sweep("matmul_backbone_gemm", &mut measurements, || {
        a.matmul(&b).recycle();
    });

    let x = normal(&mut seeded_rng(3), &[8, 48, 48], 0.0, 1.0);
    let mut conv = Conv2d::new(&mut seeded_rng(4), 8, 16, 3);
    sweep("conv_fwd_8x16_k3_48", &mut measurements, || {
        conv.forward(&x).recycle();
    });

    let mut conv = Conv2d::new(&mut seeded_rng(5), 8, 16, 3);
    let g = Tensor::ones(conv.forward(&x).shape().dims());
    sweep("conv_bwd_8x16_k3_48", &mut measurements, || {
        conv.forward(&x).recycle();
        conv.backward(&g).recycle();
    });

    let baseline = Baseline {
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        pool_width_default: exec::pool().width(),
        iterations: ITERS,
        measurements,
    };
    if maybe_json(&baseline) {
        return;
    }
    header("Execution-layer kernel baseline");
    println!(
        "host threads: {}   pool width: {}",
        baseline.host_threads, baseline.pool_width_default
    );
    println!(
        "{:<24}{:>7}{:>14}{:>10}",
        "kernel", "width", "median (µs)", "speedup"
    );
    for m in &baseline.measurements {
        println!(
            "{:<24}{:>7}{:>14.1}{:>10.2}",
            m.kernel, m.width, m.median_us, m.speedup_vs_serial
        );
    }
}
