//! Records the execution-layer kernel baseline archived in
//! `BENCH_kernels.json`: the GEMM family (blocked, naive reference, and
//! the transposed-operand entry points), conv forward/backward on both
//! the implicit-GEMM and materialized-im2col paths, elementwise/reduction
//! kernels, attention and the foveated samplers, at pool widths 1/2/4,
//! plus the host parallelism the numbers were taken under and the
//! buffer-pool scratch accounting per allocation site. Regenerate with
//! `cargo run --release -p solo-bench --bin kernels -- --json`.
//!
//! With `--baseline <path>` the binary instead diffs a fresh run against
//! an archived record (e.g. `BENCH_kernels.json`), printing the per-kernel
//! deltas and flagging regressions. When either record carries
//! `degraded_host` (a single-hardware-thread host), widths above 1 measure
//! dispatch overhead rather than speedup, so only width-1 rows count as
//! authoritative regressions; wider rows are reported as informational.
//!
//! Widths are forced through [`exec::with_threads`] so the measurements
//! do not depend on `SOLO_THREADS`; on a single-core host the wide
//! variants measure dispatch overhead rather than speedup, which is why
//! `host_threads` (and the derived `degraded_host` flag) is part of the
//! record.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use solo_bench::{header, maybe_json};
use solo_nn::{Conv2d, Layer, MultiHeadAttention};
use solo_sampler::{gaze_saliency, IndexMap, SamplerSpec};
use solo_tensor::{exec, im2col, normal, seeded_rng, Im2ColSpec, PackedMatrix, Tensor};

const WIDTHS: [usize; 3] = [1, 2, 4];
const ITERS: usize = 12;
/// A fresh median this much slower than the archived one is a regression.
const REGRESSION_PCT: f64 = 20.0;

/// One kernel timed at one pool width.
#[derive(Serialize, Deserialize)]
struct Measurement {
    kernel: String,
    width: usize,
    median_us: f64,
    speedup_vs_serial: f64,
}

/// One buffer-pool allocation site's scratch accounting, snapshotted from
/// [`exec::site_stats`] after the sweeps.
#[derive(Serialize, Deserialize)]
struct ScratchSite {
    site: String,
    takes: u64,
    total_bytes: u64,
    peak_bytes: u64,
}

/// The whole baseline: host context plus every measurement.
#[derive(Serialize, Deserialize)]
struct Baseline {
    host_threads: usize,
    /// True when the host exposes a single hardware thread: every width
    /// above 1 then measures dispatch overhead, not parallel speedup, and
    /// the record must not be compared against multi-core baselines.
    degraded_host: bool,
    pool_width_default: usize,
    iterations: usize,
    measurements: Vec<Measurement>,
    /// Per-site pooled-scratch accounting accumulated over the whole run —
    /// `gemm.pack_im2col` vs `linalg.im2col` shows the implicit-GEMM path
    /// displacing materialized column matrices.
    scratch_sites: Vec<ScratchSite>,
}

/// Median wall time of `f` over [`ITERS`] runs, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Times `f` at each width in [`WIDTHS`], deriving speedups vs width 1.
fn sweep(kernel: &str, out: &mut Vec<Measurement>, mut f: impl FnMut()) {
    let mut serial = 0.0;
    for w in WIDTHS {
        let us = median_us(|| exec::with_threads(w, &mut f));
        if w == 1 {
            serial = us;
        }
        out.push(Measurement {
            kernel: kernel.to_string(),
            width: w,
            median_us: us,
            speedup_vs_serial: if us > 0.0 { serial / us } else { 0.0 },
        });
    }
}

/// Runs every kernel sweep, returning the full record for this host.
fn measure() -> Baseline {
    let mut measurements = Vec::new();

    let a = normal(&mut seeded_rng(1), &[128, 128], 0.0, 1.0);
    let b = normal(&mut seeded_rng(2), &[128, 128], 0.0, 1.0);
    sweep("matmul_systolic_128", &mut measurements, || {
        a.matmul(&b).recycle();
    });

    let a = normal(&mut seeded_rng(1), &[64, 288], 0.0, 1.0);
    let b = normal(&mut seeded_rng(2), &[288, 576], 0.0, 1.0);
    sweep("matmul_backbone_gemm", &mut measurements, || {
        a.matmul(&b).recycle();
    });
    // The retained i-k-j reference kernel: the before/after yardstick for
    // the blocked GEMM above.
    sweep("matmul_backbone_gemm_naive", &mut measurements, || {
        a.matmul_reference(&b).recycle();
    });
    // Transposed-operand entry points at the same GEMM volume: these pack
    // the transposed operand straight from its source rows, so their cost
    // against `matmul_backbone_gemm` is the price of killing the explicit
    // backward-pass transposes.
    let bt = normal(&mut seeded_rng(2), &[576, 288], 0.0, 1.0);
    sweep("matmul_at_backbone_gemm", &mut measurements, || {
        a.matmul_at(&bt).recycle();
    });
    let at = normal(&mut seeded_rng(1), &[288, 64], 0.0, 1.0);
    sweep("matmul_ta_backbone_gemm", &mut measurements, || {
        at.matmul_ta(&b).recycle();
    });

    let x = normal(&mut seeded_rng(3), &[8, 48, 48], 0.0, 1.0);
    let mut conv = Conv2d::new(&mut seeded_rng(4), 8, 16, 3);
    sweep("conv_fwd_8x16_k3_48", &mut measurements, || {
        conv.forward(&x).recycle();
    });
    // The materialized-im2col yardstick at the same shape: what the conv
    // forward cost before the implicit-GEMM path, and what it still costs
    // below the blocked threshold.
    let spec = Im2ColSpec {
        channels: 8,
        height: 48,
        width: 48,
        kernel: 3,
        stride: 1,
        padding: 1,
        dilation: 1,
    };
    let w = normal(&mut seeded_rng(4), &[16, spec.patch_rows()], 0.0, 1.0);
    let packed = PackedMatrix::pack_lhs(&w);
    sweep(
        "conv_fwd_materialized_8x16_k3_48",
        &mut measurements,
        || {
            let cols = im2col(&x, &spec);
            packed.matmul(&cols).recycle();
            cols.recycle();
        },
    );

    let mut conv = Conv2d::new(&mut seeded_rng(5), 8, 16, 3);
    let g = Tensor::ones(conv.forward(&x).shape().dims());
    sweep("conv_bwd_8x16_k3_48", &mut measurements, || {
        conv.forward(&x).recycle();
        conv.backward(&g).recycle();
    });

    // Elementwise map over a backbone-activation-sized tensor.
    let t = normal(&mut seeded_rng(6), &[512, 512], 0.0, 1.0);
    sweep("map_gelu_512x512", &mut measurements, || {
        t.map(|v| 0.5 * v * (1.0 + (0.797_884_6 * (v + 0.044_715 * v * v * v)).tanh()))
            .recycle();
    });

    // Reductions: in-order chunked dot and argmax over 1M elements.
    let u = normal(&mut seeded_rng(7), &[1 << 20], 0.0, 1.0);
    let v = normal(&mut seeded_rng(8), &[1 << 20], 0.0, 1.0);
    sweep("dot_1m", &mut measurements, || {
        std::hint::black_box(u.dot(&v));
    });
    sweep("argmax_1m", &mut measurements, || {
        std::hint::black_box(u.argmax());
    });

    // Attention at a GT-ViT-ish token count (per-head loop fan-out).
    let mut mha = MultiHeadAttention::new(&mut seeded_rng(9), 64, 4);
    let seq = normal(&mut seeded_rng(10), &[64, 64], 0.0, 1.0);
    sweep("attention_fwd_t64_d64h4", &mut measurements, || {
        mha.infer(&seq).recycle();
    });
    let gseq = Tensor::ones(&[64, 64]);
    sweep("attention_bwd_t64_d64h4", &mut measurements, || {
        mha.forward(&seq).recycle();
        mha.backward(&gseq).recycle();
    });

    // Foveated samplers: bilinear downsample and the Voronoi upsample.
    let spec = SamplerSpec::new(128, 128, 32, 32, 16.0);
    let map = IndexMap::from_saliency(&spec, &gaze_saliency(32, 32, (0.5, 0.5), 0.12, 0.02));
    let img = normal(&mut seeded_rng(11), &[3, 128, 128], 0.0, 1.0);
    sweep("sampler_bilinear_128_to_32", &mut measurements, || {
        map.sample_bilinear(&img).recycle();
    });
    let small = normal(&mut seeded_rng(12), &[3, 32, 32], 0.0, 1.0);
    sweep("sampler_upsample_32_to_128", &mut measurements, || {
        map.upsample(&small).recycle();
    });

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    Baseline {
        host_threads,
        degraded_host: host_threads == 1,
        pool_width_default: exec::pool().width(),
        iterations: ITERS,
        measurements,
        scratch_sites: exec::site_stats()
            .into_iter()
            .map(|s| ScratchSite {
                site: s.site.to_string(),
                takes: s.takes,
                total_bytes: s.total_bytes,
                peak_bytes: s.peak_bytes,
            })
            .collect(),
    }
}

/// Diffs `fresh` against the archived `old` record, printing per-kernel
/// deltas and returning the number of authoritative regressions.
fn diff(old: &Baseline, fresh: &Baseline) -> usize {
    header("Kernel baseline diff (fresh vs archived)");
    let degraded = old.degraded_host || fresh.degraded_host;
    if degraded {
        println!(
            "note: degraded host in at least one record — widths > 1 measure \
             dispatch overhead, so only width-1 rows count as regressions"
        );
    }
    println!(
        "{:<34}{:>7}{:>12}{:>12}{:>9}  {}",
        "kernel", "width", "old (µs)", "new (µs)", "delta", "verdict"
    );
    let mut regressions = 0;
    for m in &fresh.measurements {
        let Some(prev) = old
            .measurements
            .iter()
            .find(|p| p.kernel == m.kernel && p.width == m.width)
        else {
            println!(
                "{:<34}{:>7}{:>12}{:>12.1}{:>9}  new kernel",
                m.kernel, m.width, "-", m.median_us, "-"
            );
            continue;
        };
        let pct = if prev.median_us > 0.0 {
            (m.median_us - prev.median_us) / prev.median_us * 100.0
        } else {
            0.0
        };
        let authoritative = !degraded || m.width == 1;
        let verdict = if pct > REGRESSION_PCT && authoritative {
            regressions += 1;
            "REGRESSION"
        } else if pct > REGRESSION_PCT {
            "slower (informational)"
        } else if pct < -REGRESSION_PCT {
            "faster"
        } else {
            "ok"
        };
        println!(
            "{:<34}{:>7}{:>12.1}{:>12.1}{:>+8.1}%  {}",
            m.kernel, m.width, prev.median_us, m.median_us, pct, verdict
        );
    }
    for prev in &old.measurements {
        if !fresh
            .measurements
            .iter()
            .any(|m| m.kernel == prev.kernel && m.width == prev.width)
        {
            println!(
                "{:<34}{:>7}{:>12.1}{:>12}{:>9}  removed kernel",
                prev.kernel, prev.width, prev.median_us, "-", "-"
            );
        }
    }
    println!(
        "{} authoritative regression{} (> {REGRESSION_PCT:.0}% slower)",
        regressions,
        if regressions == 1 { "" } else { "s" }
    );
    regressions
}

fn main() {
    // `--baseline <path>` switches to diff mode against an archived record.
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline requires a path").clone());

    let baseline = measure();
    if baseline.degraded_host {
        eprintln!(
            "WARNING: single-threaded host ({} hardware thread) — widths > 1 measure \
             dispatch overhead, not parallel speedup; do not compare this record \
             against multi-core baselines (degraded_host=true in the JSON).",
            baseline.host_threads
        );
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let old: Baseline = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        if diff(&old, &baseline) > 0 {
            std::process::exit(1);
        }
        return;
    }

    if maybe_json(&baseline) {
        return;
    }
    header("Execution-layer kernel baseline");
    println!(
        "host threads: {}   pool width: {}   degraded host: {}",
        baseline.host_threads, baseline.pool_width_default, baseline.degraded_host
    );
    println!(
        "{:<34}{:>7}{:>14}{:>10}",
        "kernel", "width", "median (µs)", "speedup"
    );
    for m in &baseline.measurements {
        println!(
            "{:<34}{:>7}{:>14.1}{:>10.2}",
            m.kernel, m.width, m.median_us, m.speedup_vs_serial
        );
    }
    println!();
    println!("pooled scratch by site (whole run):");
    println!(
        "{:<24}{:>10}{:>16}{:>14}",
        "site", "takes", "total (B)", "peak (B)"
    );
    for s in &baseline.scratch_sites {
        println!(
            "{:<24}{:>10}{:>16}{:>14}",
            s.site, s.takes, s.total_bytes, s.peak_bytes
        );
    }
}
