//! Regenerates Fig. 15: sensor latency/energy split, conventional vs SBS.

use solo_bench::{header, maybe_json};
use solo_core::experiments::fig15;

fn main() {
    let rows = fig15();
    if maybe_json(&rows) {
        return;
    }
    header("Fig. 15 — sensing cost: exposure / ADC+readout / MIPI");
    println!(
        "{:<8} {:<4} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "case", "sns", "exp ms", "adc ms", "mipi ms", "exp mJ", "adc mJ", "mipi mJ"
    );
    for r in &rows {
        println!(
            "{:<8} {:<4} {:>9.2} {:>9.2} {:>9.2} | {:>9.2} {:>9.2} {:>9.2}",
            r.label,
            r.sensor,
            r.exposure_ms,
            r.adc_readout_ms,
            r.mipi_ms,
            r.exposure_mj,
            r.adc_mj,
            r.mipi_mj
        );
    }
}
