//! Records the serving-resilience chaos sweep archived in
//! `BENCH_chaos.json`. Four segments, all modeled and fully deterministic
//! (no wall-clock timings, so `--check` and `--baseline`-free CI runs are
//! timing-flake-free):
//!
//! * **Chaos sweep** — a supervised [`Server`] driven over fault rate ×
//!   session count × deadline with a half-armed fleet (odd session indices
//!   carry a dropout-style [`FaultPlan`], even indices are fault-free).
//!   Each cell reports injected-fault frames, quarantine / probe /
//!   re-admission counters, per-rung oracle b-IoU, and
//!   `healthy_isolated`: the even-indexed sessions' masks are compared
//!   bit-for-bit against a twin fleet whose fault plans are all disabled —
//!   a faulting neighbor must never perturb a healthy batch-mate.
//! * **Replay** — one fully-armed 8-session fleet run twice from the same
//!   seeds through a deep outage: the run must quarantine, probe and
//!   re-admit, and both runs must agree on every mask bit and every
//!   supervisor counter (deterministic recovery from seed + frame index).
//! * **Weight-push rollback** — a push corrupted in transit must be
//!   refused with the model left on the old version, every session
//!   serving bits identical to a fleet that never saw the push; repairing
//!   and re-sending the same payload must then apply and bump the version.
//!
//! Regenerate with `cargo run --release -p solo-bench --bin chaos --
//! --json > BENCH_chaos.json`; `--check <path>` structurally validates an
//! archived record (isolation, recovery cycle, rollback) without
//! re-running the sweep; `--quick` shrinks the grid for CI smoke runs.
//!
//! [`FaultPlan`]: solo_core::resilience::FaultPlan

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use solo_bench::{header, maybe_json};
use solo_core::resilience::DegradeAction;
use solo_hw::Latency;
use solo_serve::{
    AdmitOutcome, PushError, ServeModel, ServeModelConfig, Server, ServerConfig, SessionSpec,
    WeightPush,
};
use solo_tensor::{normal, seeded_rng, xavier_uniform, Tensor};

/// Sweep seed: offsets every session's scene + fault streams.
const SWEEP_SEED: u64 = 83;
/// Ladder rung names, nominal first (mirrors `DegradeAction::rung`).
const RUNG_NAMES: [&str; DegradeAction::RUNGS] = ["nominal", "hold", "widen", "uniform", "reuse"];
/// Ticks for the deep-outage cells (8 sessions, full dropout): long
/// enough to drain a worst-case 80-frame tracker outage through the
/// probe fast-forward and re-admit at least one session.
const DEEP_TICKS: usize = 240;
/// Ticks for the shallower sweep cells.
const CELL_TICKS: usize = 96;

/// Oracle b-IoU at one ladder rung, accumulated over a cell.
#[derive(Debug, Serialize, Deserialize)]
struct RungRow {
    rung: usize,
    name: String,
    frames_scored: usize,
    b_iou: f32,
}

/// One chaos-sweep cell: fault rate × session count × deadline.
#[derive(Debug, Serialize, Deserialize)]
struct ChaosRow {
    sessions_offered: usize,
    /// Odd-indexed sessions carrying a live fault plan.
    faulty_sessions: usize,
    /// Dropout severity scale handed to `FaultPlan::dropout`.
    dropout: f64,
    deadline_ms: f64,
    ticks: usize,
    admitted: usize,
    /// Live-session frames on which the injector fired at least one fault.
    injected_frames: usize,
    quarantines: usize,
    probes: usize,
    readmissions: usize,
    /// Session-ticks spent quarantined (stub or probed).
    quarantined_session_ticks: usize,
    degraded_frames: usize,
    overrun_ticks: usize,
    /// Even-indexed (fault-free) sessions' masks are bit-identical to a
    /// twin fleet with every fault plan disabled.
    healthy_isolated: bool,
    rungs: Vec<RungRow>,
}

/// The fully-armed fleet run twice from identical seeds.
#[derive(Debug, Serialize, Deserialize)]
struct ReplayRecord {
    sessions: usize,
    dropout: f64,
    ticks: usize,
    quarantines: usize,
    probes: usize,
    readmissions: usize,
    /// Both runs agreed on every mask bit and every supervisor counter.
    deterministic: bool,
}

/// The corrupted-push / rollback exercise.
#[derive(Debug, Serialize, Deserialize)]
struct PushRecord {
    version_before: u64,
    /// The corrupted push was refused with a checksum mismatch.
    corrupted_push_refused: bool,
    /// The model still serves `version_before` after the failed push.
    rolled_back: bool,
    /// Post-failure masks are bit-identical to a fleet that never saw
    /// the push.
    masks_unchanged_after_failed_push: bool,
    /// Version after repairing and re-sending the same payload.
    version_after_good: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Record {
    host_threads: usize,
    degraded_host: bool,
    sweep: Vec<ChaosRow>,
    replay: ReplayRecord,
    push: PushRecord,
}

/// Per-session served-mask bits (`None` while a session has no mask yet).
type MaskBits = Vec<Option<Vec<u32>>>;

fn paper_model(seed: u64) -> Arc<ServeModel> {
    let mut rng = seeded_rng(seed);
    Arc::new(ServeModel::new(&mut rng, ServeModelConfig::paper_default()).expect("paper model"))
}

/// A supervised chaos server: oracle rung scoring on, no waiting room
/// (so both fleets of an isolation pair stay index-aligned for the whole
/// run — no promotion can reshape one fleet but not the other).
fn chaos_server(model: &Arc<ServeModel>, deadline_ms: f64) -> Server {
    let mut cfg = ServerConfig {
        deadline: Latency::from_ms(deadline_ms),
        queue_cap: 0,
        frames_per_video: 32,
        ..ServerConfig::paper_default()
    };
    cfg.resilience.score_round_trip = true;
    Server::new(Arc::clone(model), cfg).expect("chaos server config")
}

/// Admits the leading prefix of `specs` that fits the envelope.
fn admit_all(server: &mut Server, specs: &[SessionSpec]) -> usize {
    specs
        .iter()
        .filter(|&&spec| matches!(server.admit(spec), AdmitOutcome::Admitted(_)))
        .count()
}

/// Drives `ticks` supervised ticks, returning
/// `(injected, quarantined_session_ticks, degraded, overruns)`.
fn drive(server: &mut Server, ticks: usize) -> (usize, usize, usize, usize) {
    let (mut injected, mut qticks, mut degraded, mut overruns) = (0, 0, 0, 0);
    for _ in 0..ticks {
        let r = server.tick_supervised();
        injected += r.injected;
        qticks += r.quarantined;
        degraded += r.base.degraded;
        overruns += usize::from(r.base.overrun);
    }
    (injected, qticks, degraded, overruns)
}

/// Half-armed fleet specs: odd indices fault at `dropout`, evens never.
fn half_armed(sessions: usize, dropout: f64) -> Vec<SessionSpec> {
    (0..sessions)
        .map(|i| {
            let rate = if i % 2 == 1 { dropout } else { 0.0 };
            SessionSpec::chaos_nth(SWEEP_SEED, i, rate)
        })
        .collect()
}

fn run_cell(
    model: &Arc<ServeModel>,
    sessions: usize,
    dropout: f64,
    deadline_ms: f64,
    quick: bool,
) -> ChaosRow {
    let ticks = if quick {
        120
    } else if sessions >= 8 && dropout >= 1.0 {
        DEEP_TICKS
    } else {
        CELL_TICKS
    };
    let specs = half_armed(sessions, dropout);
    let mut server = chaos_server(model, deadline_ms);
    let admitted = admit_all(&mut server, &specs);
    let (injected, qticks, degraded, overruns) = drive(&mut server, ticks);

    // Isolation twin: the same fleet with every fault plan disabled. A
    // healthy (even-indexed) session must see the same bits whether its
    // batch-mates fault or not.
    let healthy_isolated = if dropout == 0.0 {
        true // the cell *is* its own twin
    } else {
        let twin_specs = half_armed(sessions, 0.0);
        let mut twin = chaos_server(model, deadline_ms);
        let twin_admitted = admit_all(&mut twin, &twin_specs);
        drive(&mut twin, ticks);
        let masks = server.mask_digest();
        let twin_masks = twin.mask_digest();
        twin_admitted == admitted
            && (0..admitted)
                .step_by(2)
                .all(|i| masks.get(i) == twin_masks.get(i))
    };

    let rungs = server
        .rung_scores()
        .iter()
        .enumerate()
        .map(|(r, &(frames_scored, b_iou))| RungRow {
            rung: r,
            name: RUNG_NAMES[r].to_string(),
            frames_scored,
            b_iou,
        })
        .collect();
    let sup = server.supervisor();
    ChaosRow {
        sessions_offered: sessions,
        faulty_sessions: (0..sessions)
            .filter(|i| i % 2 == 1 && dropout > 0.0)
            .count(),
        dropout,
        deadline_ms,
        ticks,
        admitted,
        injected_frames: injected,
        quarantines: sup.quarantines(),
        probes: sup.probes(),
        readmissions: sup.readmissions(),
        quarantined_session_ticks: qticks,
        degraded_frames: degraded,
        overrun_ticks: overruns,
        healthy_isolated,
        rungs,
    }
}

/// One fully-armed deep-outage run: every session carries a full-rate
/// fault plan, so quarantine/probe/re-admission cycles are guaranteed
/// within [`DEEP_TICKS`]. Returns the counters plus the final masks.
fn replay_once(
    model: &Arc<ServeModel>,
    sessions: usize,
    ticks: usize,
) -> ((usize, usize, usize), MaskBits) {
    let specs: Vec<SessionSpec> = (0..sessions)
        .map(|i| SessionSpec::chaos_nth(SWEEP_SEED ^ 0x5eed, i, 1.0))
        .collect();
    let mut server = chaos_server(model, 240.0);
    admit_all(&mut server, &specs);
    drive(&mut server, ticks);
    let sup = server.supervisor();
    let counters = (sup.quarantines(), sup.probes(), sup.readmissions());
    let masks = server
        .mask_digest()
        .into_iter()
        .map(|m| m.map(|v| v.iter().map(|x| x.to_bits()).collect()))
        .collect();
    (counters, masks)
}

fn run_replay(model: &Arc<ServeModel>, quick: bool) -> ReplayRecord {
    let sessions = 8;
    let ticks = if quick { 48 } else { DEEP_TICKS };
    let (c1, m1) = replay_once(model, sessions, ticks);
    let (c2, m2) = replay_once(model, sessions, ticks);
    ReplayRecord {
        sessions,
        dropout: 1.0,
        ticks,
        quarantines: c1.0,
        probes: c1.1,
        readmissions: c1.2,
        deterministic: c1 == c2 && m1 == m2,
    }
}

/// Stages a fresh full set of head weights against `base_version`.
fn stage_push(base_version: u64, seed: u64) -> WeightPush {
    let cfg = ServeModelConfig::paper_default();
    let mut rng = seeded_rng(seed);
    let feat = cfg.token_features();
    let p2 = cfg.patch * cfg.patch;
    WeightPush::stage(
        base_version,
        xavier_uniform(&mut rng, &[cfg.hidden, feat], feat, cfg.hidden),
        normal(&mut rng, &[cfg.hidden], 0.0, 0.02),
        xavier_uniform(&mut rng, &[p2, cfg.hidden], cfg.hidden, p2),
        normal(&mut rng, &[p2], 0.0, 0.02),
        xavier_uniform(
            &mut rng,
            &[2, cfg.predictor_hidden],
            cfg.predictor_hidden,
            2,
        ),
    )
}

fn run_push() -> PushRecord {
    // Two identically-seeded fleets on two identically-seeded models; only
    // fleet A's model sees the pushes.
    let ma = paper_model(91);
    let mb = paper_model(91);
    let mut sa = chaos_server(&ma, 240.0);
    let mut sb = chaos_server(&mb, 240.0);
    let specs: Vec<SessionSpec> = (0..8).map(|i| SessionSpec::nth(19, i)).collect();
    admit_all(&mut sa, &specs);
    admit_all(&mut sb, &specs);
    for _ in 0..4 {
        sa.tick_supervised();
        sb.tick_supervised();
    }

    let version_before = ma.version();
    let mut push = stage_push(version_before, 92);
    // Corrupt one weight bit "in transit", after the checksum was sealed.
    let cfg = ServeModelConfig::paper_default();
    let mut w = push.w1.as_slice().to_vec();
    w[0] = f32::from_bits(w[0].to_bits() ^ 1);
    let good_w1 = std::mem::replace(
        &mut push.w1,
        Tensor::from_vec(w, &[cfg.hidden, cfg.token_features()]),
    );
    let corrupted_push_refused = matches!(ma.push(&push), Err(PushError::ChecksumMismatch { .. }));
    let rolled_back = ma.version() == version_before;
    for _ in 0..2 {
        sa.tick_supervised();
        sb.tick_supervised();
    }
    let masks_unchanged_after_failed_push = sa.mask_digest() == sb.mask_digest();

    // Repair the transfer (same payload, intact bits) and re-send.
    push.w1 = good_w1;
    let version_after_good = ma.push(&push).expect("repaired push applies");
    PushRecord {
        version_before,
        corrupted_push_refused,
        rolled_back,
        masks_unchanged_after_failed_push,
        version_after_good,
    }
}

/// `(dropout rates, session counts, deadlines)` swept per cell.
#[allow(clippy::type_complexity)]
fn sweep_grid(quick: bool) -> (Vec<f64>, Vec<usize>, Vec<f64>) {
    if quick {
        (vec![0.0, 1.0], vec![8], vec![240.0])
    } else {
        (vec![0.0, 0.5, 1.0], vec![2, 8], vec![60.0, 240.0])
    }
}

fn measure(quick: bool) -> Record {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let model = paper_model(7);
    let (rates, sessions, deadlines) = sweep_grid(quick);
    let mut sweep = Vec::new();
    for &s in &sessions {
        for &rate in &rates {
            for &dl in &deadlines {
                sweep.push(run_cell(&model, s, rate, dl, quick));
            }
        }
    }
    Record {
        host_threads,
        degraded_host: host_threads == 1,
        sweep,
        replay: run_replay(&model, quick),
        push: run_push(),
    }
}

/// Structural validation of an archived record: isolation everywhere, a
/// real quarantine → probe → re-admission cycle, deterministic replay,
/// and push rollback — no re-running, so it is flake-free for CI.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rec: Record =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    if rec.sweep.is_empty() {
        return Err(format!("{path}: empty chaos sweep"));
    }
    for row in &rec.sweep {
        let tag = format!(
            "sessions={} dropout={} deadline={}",
            row.sessions_offered, row.dropout, row.deadline_ms
        );
        if !row.healthy_isolated {
            return Err(format!(
                "{path}: {tag}: healthy sessions were perturbed by faulting batch-mates"
            ));
        }
        if row.dropout == 0.0 && (row.injected_frames != 0 || row.quarantines != 0) {
            return Err(format!(
                "{path}: {tag}: faults fired on a zero-dropout fleet ({} injected, {} quarantines)",
                row.injected_frames, row.quarantines
            ));
        }
        if row.readmissions > row.probes || row.quarantines < row.readmissions {
            return Err(format!(
                "{path}: {tag}: inconsistent recovery counters (q={} p={} r={})",
                row.quarantines, row.probes, row.readmissions
            ));
        }
        if row.admitted > row.sessions_offered {
            return Err(format!(
                "{path}: {tag}: admitted more sessions than offered"
            ));
        }
        if row.rungs.len() != DegradeAction::RUNGS {
            return Err(format!(
                "{path}: {tag}: expected {} rung rows",
                DegradeAction::RUNGS
            ));
        }
        for (r, rung) in row.rungs.iter().enumerate() {
            if rung.rung != r || rung.name != RUNG_NAMES[r] {
                return Err(format!("{path}: {tag}: rung row {r} mislabeled"));
            }
            if !rung.b_iou.is_finite() || !(0.0..=1.0).contains(&rung.b_iou) {
                return Err(format!(
                    "{path}: {tag}: rung {} b-IoU {} outside [0, 1]",
                    rung.name, rung.b_iou
                ));
            }
        }
        if row.admitted > 0 && row.ticks > 0 && row.rungs.iter().all(|r| r.frames_scored == 0) {
            return Err(format!("{path}: {tag}: oracle scored no frames"));
        }
    }
    let cycle = rec
        .sweep
        .iter()
        .find(|r| r.admitted >= 8 && r.dropout > 0.0 && r.quarantines >= 1);
    if cycle.is_none() {
        return Err(format!(
            "{path}: no sweep cell with >= 8 live sessions under faults reached quarantine"
        ));
    }
    let rp = &rec.replay;
    if !rp.deterministic {
        return Err(format!(
            "{path}: replay runs diverged — recovery is not deterministic"
        ));
    }
    if rp.quarantines < 1 || rp.probes < 1 || rp.readmissions < 1 {
        return Err(format!(
            "{path}: replay shows no full quarantine -> probe -> re-admission cycle \
             (q={} p={} r={})",
            rp.quarantines, rp.probes, rp.readmissions
        ));
    }
    let pu = &rec.push;
    if !pu.corrupted_push_refused || !pu.rolled_back {
        return Err(format!(
            "{path}: corrupted weight push was not refused + rolled back"
        ));
    }
    if !pu.masks_unchanged_after_failed_push {
        return Err(format!("{path}: a failed push changed what sessions serve"));
    }
    if pu.version_after_good != pu.version_before + 1 {
        return Err(format!(
            "{path}: repaired push did not bump the version ({} -> {})",
            pu.version_before, pu.version_after_good
        ));
    }
    println!(
        "{path}: ok — {} chaos cells all healthy-isolated, replay cycle q={} p={} r={} \
         deterministic, corrupted push rolled back (v{} held, good push -> v{})",
        rec.sweep.len(),
        rp.quarantines,
        rp.probes,
        rp.readmissions,
        pu.version_before,
        pu.version_after_good
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check requires a path");
        if let Err(e) = check(path) {
            eprintln!("BENCH_chaos check failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let fresh = measure(quick);
    if maybe_json(&fresh) {
        return;
    }
    header("Chaos sweep — fault rate × sessions × deadline");
    println!(
        "{:>9}{:>9}{:>10}{:>7}{:>7}{:>10}{:>7}{:>8}{:>8}{:>9}{:>10}",
        "sessions",
        "dropout",
        "deadline",
        "ticks",
        "admit",
        "injected",
        "quar",
        "probes",
        "readmit",
        "degraded",
        "isolated"
    );
    for r in &fresh.sweep {
        println!(
            "{:>9}{:>9.2}{:>10.1}{:>7}{:>7}{:>10}{:>7}{:>8}{:>8}{:>9}{:>10}",
            r.sessions_offered,
            r.dropout,
            r.deadline_ms,
            r.ticks,
            r.admitted,
            r.injected_frames,
            r.quarantines,
            r.probes,
            r.readmissions,
            r.degraded_frames,
            r.healthy_isolated
        );
    }
    println!();
    header("Per-rung oracle b-IoU (deepest-fault cell)");
    if let Some(deep) = fresh
        .sweep
        .iter()
        .filter(|r| r.dropout > 0.0)
        .max_by(|a, b| {
            (a.dropout, a.sessions_offered)
                .partial_cmp(&(b.dropout, b.sessions_offered))
                .expect("finite dropout rates")
        })
    {
        println!("{:>9}{:>10}{:>9}{:>9}", "rung", "name", "frames", "b-IoU");
        for r in &deep.rungs {
            println!(
                "{:>9}{:>10}{:>9}{:>9.3}",
                r.rung, r.name, r.frames_scored, r.b_iou
            );
        }
    }
    println!();
    header("Deterministic replay through a deep outage");
    let rp = &fresh.replay;
    println!(
        "sessions: {}  dropout: {:.1}  ticks: {}  quarantines: {}  probes: {}  \
         readmissions: {}  deterministic: {}",
        rp.sessions,
        rp.dropout,
        rp.ticks,
        rp.quarantines,
        rp.probes,
        rp.readmissions,
        rp.deterministic
    );
    println!();
    header("Weight-push rollback");
    let pu = &fresh.push;
    println!(
        "corrupted push refused: {}  rolled back to v{}: {}  masks unchanged: {}  \
         repaired push -> v{}",
        pu.corrupted_push_refused,
        pu.version_before,
        pu.rolled_back,
        pu.masks_unchanged_after_failed_push,
        pu.version_after_good
    );
}
