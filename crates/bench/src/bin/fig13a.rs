//! Regenerates Fig. 13 (a): SOLO IoU across downsampled image sizes.

use solo_bench::{header, maybe_json};
use solo_core::experiments::{fig13a, Budget};

fn main() {
    let budget = if std::env::args().any(|a| a == "--quick") {
        Budget::quick()
    } else {
        Budget::full()
    };
    let points = fig13a(&budget, 4);
    if maybe_json(&points) {
        return;
    }
    header("Fig. 13 (a) — IoU vs downsample size (SOLO, HR backbone)");
    println!(
        "{:<6} {:>12} {:>11} {:>7} {:>7}",
        "data", "paper size", "func size", "b-IoU", "c-IoU"
    );
    for p in &points {
        println!(
            "{:<6} {:>11}² {:>10}² {:>7.3} {:>7.3}",
            p.dataset, p.paper_side, p.func_side, p.b_iou, p.c_iou
        );
    }
}
