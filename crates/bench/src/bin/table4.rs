//! Regenerates Table 4: latency comparison including the XR2-class NPU.

use solo_bench::{header, maybe_json};
use solo_core::experiments::table4;

fn main() {
    let rows = table4();
    if maybe_json(&rows) {
        return;
    }
    header("Table 4 — latency (ms) across compute engines");
    print!("{:<5} {:<6}", "model", "data");
    for (name, _) in &rows[0].latencies_ms {
        print!("{name:>9}");
    }
    println!();
    for r in &rows {
        print!("{:<5} {:<6}", r.backbone, r.dataset);
        for (_, ms) in &r.latencies_ms {
            print!("{ms:>9.1}");
        }
        println!();
    }
}
