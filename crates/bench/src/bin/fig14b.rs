//! Regenerates Fig. 14 (b): speedup from SSA result reuse across settings.

use solo_bench::{header, maybe_json};
use solo_core::experiments::fig14b;

fn main() {
    let frames = if std::env::args().any(|a| a == "--quick") {
        300
    } else {
        1800
    };
    let points = fig14b(frames, 5);
    if maybe_json(&points) {
        return;
    }
    header("Fig. 14 (b) — SSA speedup across (alpha/beta) settings");
    println!(
        "{:<18} {:<6} {:>13} {:>9}",
        "setting", "model", "latency (ms)", "speedup"
    );
    for p in &points {
        println!(
            "{:<18} {:<6} {:>13.1} {:>8.2}x",
            p.setting, p.backbone, p.mean_latency_ms, p.speedup
        );
    }
}
