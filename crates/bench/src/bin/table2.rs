//! Regenerates Table 2: IOI segmentation accuracy of AD / LTD / SOLO / FR
//! across three backbones and three datasets. Trains every cell from
//! scratch — takes tens of minutes at the full budget; pass `--quick` for
//! a fast smoke run.

use solo_bench::{header, maybe_json};
use solo_core::experiments::{table2, Budget};

fn main() {
    let budget = if std::env::args().any(|a| a == "--quick") {
        Budget::quick()
    } else {
        Budget::full()
    };
    let cells = table2(&budget, 1);
    if maybe_json(&cells) {
        return;
    }
    header("Table 2 — b-IoU / c-IoU per method (trained from scratch)");
    println!(
        "{:<5} {:<6} {:>13} {:>13} {:>13} {:>13} {:>13} {:>9} {:>10}",
        "model", "data", "AD", "LTD", "SOLO", "SOLO-i8", "FR", "GFLOPs", "FR GFLOPs"
    );
    for c in &cells {
        println!(
            "{:<5} {:<6} {:>13} {:>13} {:>13} {:>13} {:>13} {:>9.0} {:>10.0}",
            c.backbone,
            c.dataset,
            fmt_pair(c.ad),
            fmt_pair(c.ltd),
            fmt_pair(c.solo),
            fmt_pair(c.solo_quant),
            fmt_pair(c.fr),
            c.gflops,
            c.fr_gflops,
        );
    }
}

fn fmt_pair((b, c): (f32, f32)) -> String {
    format!("{b:.2}/{c:.2}")
}
