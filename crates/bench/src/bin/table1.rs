//! Regenerates Table 1: segmentation latency vs input size on the mobile
//! GPU (anchored to the paper's Jetson Orin NX measurements).

use solo_bench::{header, maybe_json};
use solo_core::experiments::table1;

fn main() {
    let rows = table1();
    if maybe_json(&rows) {
        return;
    }
    header("Table 1 — processing latency under different resolutions (ms)");
    print!("{:<8}", "network");
    for (side, _) in &rows[0].latencies {
        print!("{:>12}", format!("{side}×{side}"));
    }
    println!();
    for row in &rows {
        print!("{:<8}", row.network);
        for (_, ms) in &row.latencies {
            print!("{ms:>12.0}");
        }
        println!();
    }
}
