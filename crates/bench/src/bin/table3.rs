//! Regenerates Table 3: absolute latency of FR+GPU vs SOLO.

use solo_bench::{header, maybe_json};
use solo_core::experiments::table3;

fn main() {
    let rows = table3();
    if maybe_json(&rows) {
        return;
    }
    header("Table 3 — end-to-end latency (ms)");
    println!(
        "{:<5} {:<6} {:>10} {:>8} {:>8}",
        "model", "data", "FR+GPU", "SOLO", "ratio"
    );
    for r in &rows {
        println!(
            "{:<5} {:<6} {:>10.1} {:>8.1} {:>7.1}x",
            r.backbone,
            r.dataset,
            r.fr_gpu_ms,
            r.solo_ms,
            r.fr_gpu_ms / r.solo_ms
        );
    }
}
