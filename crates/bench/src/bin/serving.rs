//! Records the multi-session serving baseline archived in
//! `BENCH_serving.json`. Two halves:
//!
//! * **Inference core** (measured): the per-tick serving compute — the
//!   batched RNN predictor step plus the two-layer segmentation head —
//!   timed batched (one [`SharedPackedCache`] per weight matrix,
//!   cross-session fused GEMMs) against the sequential per-session
//!   baseline (every session its own [`PackedCache`], one GEMM dispatch
//!   per session). Two scenarios: the **push** tick — a weight push lands,
//!   so the sequential baseline repacks every panel once per *session*
//!   where the shared caches repack once per process — and the **steady**
//!   tick, where the repack bill is amortized over the push epoch and the
//!   comparison isolates the fused-dispatch savings. The acceptance bar is
//!   batched ≥ 1.3× on the push tick at pool width 1.
//! * **Serving sweep** (modeled): a real [`Server`] driven over sessions ×
//!   deadline × batch, reporting admission outcomes, degradation and
//!   sustained sessions×fps. `batch` never changes outcomes — only GEMM
//!   fusion — which `--check` asserts on the archived record.
//!
//! Regenerate with `cargo run --release -p solo-bench --bin serving --
//! --json`; `--baseline <path>` diffs a fresh run against an archived
//! record (width-1 rows are authoritative on a degraded host, exactly like
//! the `kernels` binary); `--check <path>` structurally validates an
//! archived record without re-measuring, so it is timing-flake-free for
//! CI.
//!
//! [`SharedPackedCache`]: solo_tensor::SharedPackedCache
//! [`PackedCache`]: solo_tensor::PackedCache
//! [`Server`]: solo_serve::Server

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use solo_bench::{header, maybe_json};
use solo_hw::Latency;
use solo_nn::{RnnCell, RnnCellPacked};
use solo_serve::{
    AdmitOutcome, Precision, ServeModel, ServeModelConfig, Server, ServerConfig, SessionSpec,
};
use solo_tensor::{
    exec, matmul_packed_batched, normal, qmatmul_packed_batched, seeded_rng, xavier_uniform,
    PackedCache, PackedMatrix, QPackedMatrix, SharedPackedCache, Tensor,
};

const WIDTHS: [usize; 3] = [1, 2, 4];
const ITERS: usize = 16;
/// A fresh median this much slower than the archived one is a regression.
const REGRESSION_PCT: f64 = 20.0;
/// Archived width-1 f32 batched-vs-sequential speedup on the push tick
/// must clear this bar.
const MIN_BATCHED_SPEEDUP: f64 = 1.3;
/// Sessions in the measured inference core.
const CORE_SESSIONS: usize = 8;
/// Ticks per weight-push epoch in the steady scenario: every timed block
/// starts with a version bump, so each block pays one repack (per process
/// or per session) amortized over this many ticks.
const EPOCH_TICKS: usize = 4;
/// The two core scenarios as `(name, ticks-per-push-epoch)`. `"push"`
/// times the tick a weight push lands on — the repack bill in full —
/// while `"steady"` amortizes it over [`EPOCH_TICKS`] ticks.
const SCENARIOS: [(&str, usize); 2] = [("push", 1), ("steady", EPOCH_TICKS)];
/// Predictor rollout horizon per tick: the speculative gaze forecast runs
/// the RNN this many steps ahead (24 ticks ≈ 0.4 s at 60 Hz — enough to
/// cover a saccade's landing point). Each step's GEMM is tiny, so the
/// sequential baseline pays per-session dispatch overhead `R × S` times
/// per tick where the batched path pays it `R` times — the RNN time-step
/// loop is where cross-session batching bites hardest.
const ROLLOUT_STEPS: usize = 24;

// The serving head geometry, mirroring `ServeModelConfig::paper_default`:
// 24² crops in 4×4 patches → 36 tokens of 48 features, hidden 32, 16
// logits per token; predictor 2 → 8.
const TOKENS: usize = 36;
const FEAT: usize = 48;
const HIDDEN: usize = 32;
const OUT: usize = 16;
const RNN_HIDDEN: usize = 8;

/// One inference-core comparison at one pool width.
#[derive(Serialize, Deserialize)]
struct CoreMeasurement {
    precision: String,
    /// `"push"` — a weight push lands on the measured tick, so the
    /// sequential baseline repacks every panel once per *session* where
    /// the shared caches repack once per process. `"steady"` — pushes land
    /// every [`EPOCH_TICKS`] ticks, so the repack bill is amortized and
    /// the comparison isolates the fused-dispatch savings.
    scenario: String,
    width: usize,
    sessions: usize,
    /// Per-tick µs of the sequential baseline (per-session caches and
    /// dispatches).
    sequential_us: f64,
    /// Per-tick µs of the batched path (shared caches, fused dispatches).
    batched_us: f64,
    speedup_batched_vs_sequential: f64,
}

/// One cell of the serving sweep: a (sessions, deadline, batch) triple.
#[derive(Serialize, Deserialize)]
struct SweepRow {
    sessions_offered: usize,
    deadline_ms: f64,
    batch: usize,
    ticks: usize,
    admitted: usize,
    queued: usize,
    rejected: usize,
    /// Session-frames segmented across the run.
    ran_frames: usize,
    /// Session-frames served from a previous mask.
    reused_frames: usize,
    /// Session-frames decided at a below-nominal ladder rung.
    degraded_frames: usize,
    /// Ticks that overran the deadline after maximal degradation.
    overrun_ticks: usize,
    /// Sustained throughput: live sessions × tick rate, derated by the
    /// overrun fraction.
    sessions_x_fps: f64,
}

/// The archived record: host context, the measured core, and the sweep.
#[derive(Serialize, Deserialize)]
struct Record {
    host_threads: usize,
    /// True when the host exposes a single hardware thread: widths above 1
    /// then measure dispatch overhead, not parallel speedup, and must not
    /// be compared against multi-core baselines.
    degraded_host: bool,
    pool_width_default: usize,
    iterations: usize,
    core: Vec<CoreMeasurement>,
    sweep: Vec<SweepRow>,
}

/// Median wall time of `f` over [`ITERS`] runs, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Shared fixtures for the inference-core comparison: one set of weights,
/// one set of per-session activations.
struct CoreFixture {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    rnn: RnnCell,
    /// Gaze-delta readout `[2, RNN_HIDDEN]` applied after the rollout.
    readout: Tensor,
    /// Per-session token matrices `[TOKENS, FEAT]`.
    tokens: Vec<Tensor>,
    /// All sessions' gazes `[S, 2]` and its per-session `[1, 2]` rows.
    gazes: Tensor,
    gaze_rows: Vec<Tensor>,
    /// All sessions' hidden states `[S, RNN_HIDDEN]` and per-session rows.
    hidden: Tensor,
    hidden_rows: Vec<Tensor>,
}

impl CoreFixture {
    fn new() -> Self {
        let mut rng = seeded_rng(21);
        let tokens: Vec<Tensor> = (0..CORE_SESSIONS)
            .map(|i| normal(&mut rng, &[TOKENS, FEAT], 0.0, 0.4 + 0.1 * i as f32))
            .collect();
        let gazes = normal(&mut rng, &[CORE_SESSIONS, 2], 0.5, 0.1);
        let hidden = normal(&mut rng, &[CORE_SESSIONS, RNN_HIDDEN], 0.0, 0.3);
        Self {
            w1: xavier_uniform(&mut rng, &[HIDDEN, FEAT], FEAT, HIDDEN),
            b1: normal(&mut rng, &[HIDDEN], 0.0, 0.1),
            w2: xavier_uniform(&mut rng, &[OUT, HIDDEN], HIDDEN, OUT),
            b2: normal(&mut rng, &[OUT], 0.0, 0.1),
            rnn: RnnCell::new(&mut rng, 2, RNN_HIDDEN),
            readout: xavier_uniform(&mut rng, &[2, RNN_HIDDEN], RNN_HIDDEN, 2),
            gaze_rows: (0..CORE_SESSIONS)
                .map(|i| gazes.row(i).reshape(&[1, 2]))
                .collect(),
            hidden_rows: (0..CORE_SESSIONS)
                .map(|i| hidden.row(i).reshape(&[1, RNN_HIDDEN]))
                .collect(),
            tokens,
            gazes,
            hidden,
        }
    }

    fn bias_tanh(x: &mut Tensor, b: &Tensor) {
        let bs = b.as_slice();
        for row in x.as_mut_slice().chunks_exact_mut(bs.len()) {
            for (o, &bv) in row.iter_mut().zip(bs) {
                *o = (*o + bv).tanh();
            }
        }
    }

    fn bias_add(x: &mut Tensor, b: &Tensor) {
        let bs = b.as_slice();
        for row in x.as_mut_slice().chunks_exact_mut(bs.len()) {
            for (o, &bv) in row.iter_mut().zip(bs) {
                *o += bv;
            }
        }
    }

    /// One weight-push epoch of the sequential baseline: each session owns
    /// its caches, so the version bump at block start repacks once per
    /// *session*; every tick dispatches one GEMM chain per session.
    fn sequential_epoch(&self, precision: Precision, ticks: usize, version: &mut u64) {
        *version += 1;
        let mut f32_caches: Vec<(PackedCache, PackedCache)> =
            (0..CORE_SESSIONS).map(|_| Default::default()).collect();
        let mut q_caches: Vec<(PackedCache<QPackedMatrix>, PackedCache<QPackedMatrix>)> =
            (0..CORE_SESSIONS).map(|_| Default::default()).collect();
        let mut cell_caches: Vec<PackedCache<RnnCellPacked>> =
            (0..CORE_SESSIONS).map(|_| Default::default()).collect();
        let mut readout_caches: Vec<PackedCache> =
            (0..CORE_SESSIONS).map(|_| Default::default()).collect();
        for _ in 0..ticks {
            for s in 0..CORE_SESSIONS {
                let mut h = match precision {
                    Precision::F32 => {
                        let p1 = f32_caches[s]
                            .0
                            .get_or_pack(*version, || PackedMatrix::pack_rhs_transposed(&self.w1));
                        self.tokens[s].matmul_packed(p1)
                    }
                    Precision::Int8 => {
                        let q1 = q_caches[s]
                            .0
                            .get_or_pack(*version, || QPackedMatrix::pack_rhs_transposed(&self.w1));
                        self.tokens[s].qmatmul_packed(q1)
                    }
                };
                Self::bias_tanh(&mut h, &self.b1);
                let mut l = match precision {
                    Precision::F32 => {
                        let p2 = f32_caches[s]
                            .1
                            .get_or_pack(*version, || PackedMatrix::pack_rhs_transposed(&self.w2));
                        h.matmul_packed(p2)
                    }
                    Precision::Int8 => {
                        let q2 = q_caches[s]
                            .1
                            .get_or_pack(*version, || QPackedMatrix::pack_rhs_transposed(&self.w2));
                        h.qmatmul_packed(q2)
                    }
                };
                Self::bias_add(&mut l, &self.b2);
                h.recycle();
                l.recycle();
                // Speculative gaze rollout: R predictor steps, one session
                // at a time — R tiny GEMM chains per session per tick.
                let cell = cell_caches[s].get_or_pack(*version, || self.rnn.pack());
                let mut hid = self.hidden_rows[s].clone();
                for _ in 0..ROLLOUT_STEPS {
                    let next = self.rnn.step_batch(&self.gaze_rows[s], &hid, cell);
                    hid.recycle();
                    hid = next;
                }
                let pr = readout_caches[s].get_or_pack(*version, || {
                    PackedMatrix::pack_rhs_transposed(&self.readout)
                });
                let delta = hid.matmul_packed(pr);
                delta.recycle();
                hid.recycle();
            }
        }
    }

    /// One weight-push epoch of the batched path: shared caches repack
    /// once per *process* at the version bump; every tick fuses all
    /// sessions into one GEMM chain and one RNN step.
    fn batched_epoch(&self, precision: Precision, ticks: usize, version: &mut u64) {
        *version += 1;
        let shared_f1: SharedPackedCache = SharedPackedCache::new();
        let shared_f2: SharedPackedCache = SharedPackedCache::new();
        let shared_q1: SharedPackedCache<QPackedMatrix> = SharedPackedCache::new();
        let shared_q2: SharedPackedCache<QPackedMatrix> = SharedPackedCache::new();
        let shared_cell: SharedPackedCache<RnnCellPacked> = SharedPackedCache::new();
        let shared_readout: SharedPackedCache = SharedPackedCache::new();
        for _ in 0..ticks {
            let refs: Vec<&Tensor> = self.tokens.iter().collect();
            let mut hs = match precision {
                Precision::F32 => {
                    let p1 = shared_f1
                        .get_or_pack(*version, || PackedMatrix::pack_rhs_transposed(&self.w1));
                    matmul_packed_batched(&refs, &p1)
                }
                Precision::Int8 => {
                    let q1 = shared_q1
                        .get_or_pack(*version, || QPackedMatrix::pack_rhs_transposed(&self.w1));
                    qmatmul_packed_batched(&refs, &q1)
                }
            };
            for h in &mut hs {
                Self::bias_tanh(h, &self.b1);
            }
            let hrefs: Vec<&Tensor> = hs.iter().collect();
            let mut ls = match precision {
                Precision::F32 => {
                    let p2 = shared_f2
                        .get_or_pack(*version, || PackedMatrix::pack_rhs_transposed(&self.w2));
                    matmul_packed_batched(&hrefs, &p2)
                }
                Precision::Int8 => {
                    let q2 = shared_q2
                        .get_or_pack(*version, || QPackedMatrix::pack_rhs_transposed(&self.w2));
                    qmatmul_packed_batched(&hrefs, &q2)
                }
            };
            for l in &mut ls {
                Self::bias_add(l, &self.b2);
            }
            for t in hs.into_iter().chain(ls) {
                t.recycle();
            }
            // The same rollout with the time-step loop batched across the
            // session dimension: R fused GEMM chains per tick, total.
            let cell = shared_cell.get_or_pack(*version, || self.rnn.pack());
            let mut hid = self.hidden.clone();
            for _ in 0..ROLLOUT_STEPS {
                let next = self.rnn.step_batch(&self.gazes, &hid, &cell);
                hid.recycle();
                hid = next;
            }
            let pr = shared_readout.get_or_pack(*version, || {
                PackedMatrix::pack_rhs_transposed(&self.readout)
            });
            let deltas = hid.matmul_packed(&pr);
            deltas.recycle();
            hid.recycle();
        }
    }
}

/// Times the inference core at each pool width, both precisions, both
/// push-cadence scenarios.
fn measure_core() -> Vec<CoreMeasurement> {
    let fx = CoreFixture::new();
    let mut out = Vec::new();
    for precision in [Precision::F32, Precision::Int8] {
        for (scenario, ticks) in SCENARIOS {
            // Time several epochs per block so each timed unit spans a few
            // milliseconds — single-core hosts jitter too much at ~300 µs.
            let reps = (8 / ticks).max(1);
            for width in WIDTHS {
                let mut v = 0u64;
                let sequential_us = median_us(|| {
                    exec::with_threads(width, || {
                        for _ in 0..reps {
                            fx.sequential_epoch(precision, ticks, &mut v);
                        }
                    })
                }) / (ticks * reps) as f64;
                let mut v = 0u64;
                let batched_us = median_us(|| {
                    exec::with_threads(width, || {
                        for _ in 0..reps {
                            fx.batched_epoch(precision, ticks, &mut v);
                        }
                    })
                }) / (ticks * reps) as f64;
                out.push(CoreMeasurement {
                    precision: precision.name().to_string(),
                    scenario: scenario.to_string(),
                    width,
                    sessions: CORE_SESSIONS,
                    sequential_us,
                    batched_us,
                    speedup_batched_vs_sequential: if batched_us > 0.0 {
                        sequential_us / batched_us
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    out
}

/// Offered-session counts, deadlines and batch sizes of the sweep.
fn sweep_grid(quick: bool) -> (Vec<usize>, Vec<f64>, Vec<usize>, usize) {
    if quick {
        (vec![1, 4], vec![33.3, 60.0], vec![1, 8], 6)
    } else {
        (
            vec![1, 2, 4, 8, 16],
            vec![16.7, 33.3, 60.0],
            vec![1, 4, 8],
            24,
        )
    }
}

/// Drives a real server over the sweep grid.
fn measure_sweep(quick: bool) -> Vec<SweepRow> {
    let (session_counts, deadlines, batches, ticks) = sweep_grid(quick);
    let mut rng = seeded_rng(31);
    let model = Arc::new(
        ServeModel::new(&mut rng, ServeModelConfig::paper_default())
            .expect("paper-default serve model"),
    );
    let mut rows = Vec::new();
    for &offered in &session_counts {
        for &deadline_ms in &deadlines {
            for &batch in &batches {
                let cfg = ServerConfig {
                    deadline: Latency::from_ms(deadline_ms),
                    batch,
                    frames_per_video: 16,
                    ..ServerConfig::paper_default()
                };
                let mut server =
                    Server::new(Arc::clone(&model), cfg).expect("validated server config");
                let (mut admitted, mut queued, mut rejected) = (0usize, 0usize, 0usize);
                for i in 0..offered {
                    match server.admit(SessionSpec::nth(77, i)) {
                        AdmitOutcome::Admitted(_) => admitted += 1,
                        AdmitOutcome::Queued => queued += 1,
                        AdmitOutcome::Rejected { .. } => rejected += 1,
                    }
                }
                let mut degraded_frames = 0usize;
                for _ in 0..ticks {
                    degraded_frames += server.tick().degraded;
                }
                let live = server.sessions().len();
                let served_fraction = (ticks - server.overruns()) as f64 / ticks.max(1) as f64;
                rows.push(SweepRow {
                    sessions_offered: offered,
                    deadline_ms,
                    batch,
                    ticks,
                    admitted,
                    queued,
                    rejected,
                    ran_frames: server.frames_ran(),
                    reused_frames: server.frames_served() - server.frames_ran(),
                    degraded_frames,
                    overrun_ticks: server.overruns(),
                    sessions_x_fps: live as f64 * (1000.0 / deadline_ms) * served_fraction,
                });
            }
        }
    }
    rows
}

fn measure(quick: bool) -> Record {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    Record {
        host_threads,
        degraded_host: host_threads == 1,
        pool_width_default: exec::pool().width(),
        iterations: ITERS,
        core: measure_core(),
        sweep: measure_sweep(quick),
    }
}

/// Diffs the fresh core timings against the archived record, printing
/// per-row deltas and returning the number of authoritative regressions.
fn diff(old: &Record, fresh: &Record) -> usize {
    header("Serving core diff (fresh vs archived)");
    let degraded = old.degraded_host || fresh.degraded_host;
    if degraded {
        println!(
            "note: degraded host in at least one record — widths > 1 measure \
             dispatch overhead, so only width-1 rows count as regressions"
        );
    }
    println!(
        "{:<22}{:>7}{:>13}{:>13}{:>9}  {}",
        "core", "width", "old (µs)", "new (µs)", "delta", "verdict"
    );
    let mut regressions = 0;
    for m in &fresh.core {
        let label = format!("batched_{}_{}", m.precision, m.scenario);
        let Some(prev) = old
            .core
            .iter()
            .find(|p| p.precision == m.precision && p.scenario == m.scenario && p.width == m.width)
        else {
            println!(
                "{:<22}{:>7}{:>13}{:>13.1}{:>9}  new row",
                label, m.width, "-", m.batched_us, "-"
            );
            continue;
        };
        let pct = if prev.batched_us > 0.0 {
            (m.batched_us - prev.batched_us) / prev.batched_us * 100.0
        } else {
            0.0
        };
        let authoritative = !degraded || m.width == 1;
        let verdict = if pct > REGRESSION_PCT && authoritative {
            regressions += 1;
            "REGRESSION"
        } else if pct > REGRESSION_PCT {
            "slower (informational)"
        } else if pct < -REGRESSION_PCT {
            "faster"
        } else {
            "ok"
        };
        println!(
            "{:<22}{:>7}{:>13.1}{:>13.1}{:>+8.1}%  {}",
            label, m.width, prev.batched_us, m.batched_us, pct, verdict
        );
    }
    println!(
        "{} authoritative regression{} (> {REGRESSION_PCT:.0}% slower)",
        regressions,
        if regressions == 1 { "" } else { "s" }
    );
    regressions
}

/// Structural validation of an archived `BENCH_serving.json` — no
/// re-measurement, so it is timing-flake-free for CI.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rec: Record =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    if rec.host_threads == 1 && !rec.degraded_host {
        return Err(format!(
            "{path}: one-thread host must be recorded with degraded_host=true"
        ));
    }
    // Core rows: complete grid, consistent speedup columns, the width-1
    // f32 push-tick batched-throughput bar.
    for precision in ["f32", "i8"] {
        for (scenario, _) in SCENARIOS {
            for width in WIDTHS {
                let m = rec
                    .core
                    .iter()
                    .find(|m| {
                        m.precision == precision && m.scenario == scenario && m.width == width
                    })
                    .ok_or_else(|| {
                        format!("{path}: missing {precision}/{scenario} core row at width {width}")
                    })?;
                if !(m.sequential_us.is_finite() && m.batched_us.is_finite() && m.batched_us > 0.0)
                {
                    return Err(format!(
                        "{path}: non-finite core timing for {precision}/{scenario} w{width}"
                    ));
                }
                let derived = m.sequential_us / m.batched_us;
                if (m.speedup_batched_vs_sequential - derived).abs() > 1e-6 * derived.max(1.0) {
                    return Err(format!(
                        "{path}: {precision}/{scenario} w{width} speedup column disagrees \
                         with timings"
                    ));
                }
            }
        }
    }
    let bar = rec
        .core
        .iter()
        .find(|m| m.precision == "f32" && m.scenario == "push" && m.width == 1)
        .ok_or_else(|| format!("{path}: missing width-1 f32 push core row"))?;
    if bar.speedup_batched_vs_sequential < MIN_BATCHED_SPEEDUP {
        return Err(format!(
            "{path}: archived width-1 push-tick batched speedup {:.2}× is below the {:.1}× bar",
            bar.speedup_batched_vs_sequential, MIN_BATCHED_SPEEDUP
        ));
    }
    // Sweep rows: sane counters, and batch size must not change outcomes —
    // rows differing only in `batch` carry identical serving counters.
    if rec.sweep.is_empty() {
        return Err(format!("{path}: empty serving sweep"));
    }
    for r in &rec.sweep {
        if r.admitted + r.queued + r.rejected != r.sessions_offered {
            return Err(format!(
                "{path}: sessions={} deadline={} batch={}: admission outcomes do not sum",
                r.sessions_offered, r.deadline_ms, r.batch
            ));
        }
        if !r.sessions_x_fps.is_finite() || r.sessions_x_fps < 0.0 {
            return Err(format!(
                "{path}: sessions={} deadline={} batch={}: bad sessions_x_fps",
                r.sessions_offered, r.deadline_ms, r.batch
            ));
        }
    }
    for a in &rec.sweep {
        for b in &rec.sweep {
            if a.sessions_offered == b.sessions_offered
                && a.deadline_ms == b.deadline_ms
                && a.batch != b.batch
                && (
                    a.admitted,
                    a.ran_frames,
                    a.reused_frames,
                    a.degraded_frames,
                    a.overrun_ticks,
                ) != (
                    b.admitted,
                    b.ran_frames,
                    b.reused_frames,
                    b.degraded_frames,
                    b.overrun_ticks,
                )
            {
                return Err(format!(
                    "{path}: sessions={} deadline={}: batch {} vs {} changed serving outcomes",
                    a.sessions_offered, a.deadline_ms, a.batch, b.batch
                ));
            }
        }
    }
    println!(
        "{path}: ok — {} core rows, {} sweep rows, width-1 f32 push-tick batched speedup {:.2}× \
         (bar {:.1}×), batch-invariant outcomes, degraded_host={}",
        rec.core.len(),
        rec.sweep.len(),
        bar.speedup_batched_vs_sequential,
        MIN_BATCHED_SPEEDUP,
        rec.degraded_host
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check requires a path");
        if let Err(e) = check(path) {
            eprintln!("BENCH_serving check failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let fresh = measure(quick);
    if fresh.degraded_host {
        eprintln!(
            "WARNING: single-threaded host ({} hardware thread) — widths > 1 measure \
             dispatch overhead, not parallel speedup (degraded_host=true in the JSON).",
            fresh.host_threads
        );
    }
    if let Some(i) = args.iter().position(|a| a == "--baseline") {
        let path = args.get(i + 1).expect("--baseline requires a path");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let old: Record = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        if diff(&old, &fresh) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if maybe_json(&fresh) {
        return;
    }
    header("Cross-session batched inference core");
    println!(
        "host threads: {}   pool width: {}   degraded host: {}   sessions: {}",
        fresh.host_threads, fresh.pool_width_default, fresh.degraded_host, CORE_SESSIONS
    );
    println!(
        "{:<12}{:<10}{:>7}{:>17}{:>14}{:>10}",
        "precision", "scenario", "width", "sequential (µs)", "batched (µs)", "speedup"
    );
    for m in &fresh.core {
        println!(
            "{:<12}{:<10}{:>7}{:>17.1}{:>14.1}{:>10.2}",
            m.precision,
            m.scenario,
            m.width,
            m.sequential_us,
            m.batched_us,
            m.speedup_batched_vs_sequential
        );
    }
    println!();
    header("Serving sweep — sessions × deadline × batch");
    println!(
        "{:>9}{:>10}{:>7}{:>9}{:>8}{:>9}{:>7}{:>9}{:>10}{:>9}{:>14}",
        "offered",
        "deadline",
        "batch",
        "admit",
        "queue",
        "reject",
        "ran",
        "reused",
        "degraded",
        "overrun",
        "sessions×fps"
    );
    for r in &fresh.sweep {
        println!(
            "{:>9}{:>8.1}ms{:>7}{:>9}{:>8}{:>9}{:>7}{:>9}{:>10}{:>9}{:>14.1}",
            r.sessions_offered,
            r.deadline_ms,
            r.batch,
            r.admitted,
            r.queued,
            r.rejected,
            r.ran_frames,
            r.reused_frames,
            r.degraded_frames,
            r.overrun_ticks,
            r.sessions_x_fps
        );
    }
}
