//! Regenerates the Section 6.1 accelerator area breakdown.

use solo_bench::{header, maybe_json};
use solo_core::experiments::area_report;

fn main() {
    let entries = area_report();
    if maybe_json(&entries) {
        return;
    }
    header("Section 6.1 — SOLO accelerator area at 22 nm");
    for e in &entries {
        println!(
            "{:<22} {:>6.2} mm²  ({:>4.1}%)",
            e.component,
            e.area_mm2,
            e.fraction * 100.0
        );
    }
    let total: f64 = entries.iter().map(|e| e.area_mm2).sum();
    println!("{:<22} {total:>6.2} mm²", "total");
}
