//! Per-user serving state: one session owns a gaze trace + scene, its SSA
//! state machine, its degradation ladder, and its slice of the batched
//! predictor's hidden state. Everything *model*-sized is shared (see
//! [`crate::ServeModel`]); everything *user*-sized lives here.

use solo_core::resilience::{DegradeAction, DegradeLadder};
use solo_core::solonet::PipelineConfig;
use solo_core::ssa::{Ssa, SsaConfig};
use solo_gaze::GazePoint;
use solo_hw::soc::Dataset as HwDataset;
use solo_sampler::SamplerSpec;
use solo_scene::{Frame, VideoConfig, VideoSequence};
use solo_tensor::{seeded_rng, Tensor};

/// Scene preset a session streams, mirroring the resilience experiments'
/// four calibrated (video, SoC-dataset, paper-resolution) triples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScenePreset {
    /// Egocentric AR viewing (Aria-like), 960 px paper frames.
    Aria,
    /// Cluttered static scenes (LVIS-like), 640 px paper frames.
    Lvis,
    /// Scene parsing (ADE20K-like), 512 px paper frames.
    Ade,
    /// Single moving object (DAVIS-like), 480 px paper frames.
    Davis,
}

impl ScenePreset {
    /// The video generator for this preset.
    pub fn video_config(&self, frames: usize) -> VideoConfig {
        match self {
            ScenePreset::Aria => VideoConfig::aria_like(frames),
            ScenePreset::Lvis => VideoConfig::lvis_like(frames),
            ScenePreset::Ade => VideoConfig::ade_like(frames),
            ScenePreset::Davis => VideoConfig::davis_like(frames),
        }
    }

    /// The SoC cost-model dataset this preset is priced as.
    pub fn hw_dataset(&self) -> HwDataset {
        match self {
            ScenePreset::Aria => HwDataset::Aria,
            ScenePreset::Lvis => HwDataset::Lvis,
            ScenePreset::Ade => HwDataset::Ade,
            ScenePreset::Davis => HwDataset::Davis,
        }
    }

    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ScenePreset::Aria => "aria",
            ScenePreset::Lvis => "lvis",
            ScenePreset::Ade => "ade",
            ScenePreset::Davis => "davis",
        }
    }
}

/// Everything needed to (re)create a session deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SessionSpec {
    /// Seed for the session's scene + gaze trace.
    pub seed: u64,
    /// Scene preset the session streams.
    pub scene: ScenePreset,
}

impl SessionSpec {
    /// A spec for session `i` of a sweep: presets round-robin and seeds
    /// derive from the sweep seed so any subset regenerates identically.
    pub fn nth(sweep_seed: u64, i: usize) -> Self {
        const PRESETS: [ScenePreset; 4] = [
            ScenePreset::Aria,
            ScenePreset::Lvis,
            ScenePreset::Ade,
            ScenePreset::Davis,
        ];
        Self {
            seed: sweep_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
            scene: PRESETS[i % PRESETS.len()],
        }
    }
}

/// Counters one session accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SessionStats {
    /// Frames served (every tick the session was live).
    pub frames: usize,
    /// Frames where SOLONet ran (SSA decided run, budget admitted it).
    pub runs: usize,
    /// Frames served by SSA reuse or a degraded mask reuse.
    pub reuses: usize,
    /// Frames decided at a below-nominal ladder rung.
    pub degraded: usize,
    /// Frames at each ladder rung (nominal first).
    pub rung_frames: [usize; DegradeAction::RUNGS],
}

/// One live serving session (see the module docs).
#[derive(Debug)]
pub struct Session {
    spec: SessionSpec,
    video: VideoSequence,
    cursor: usize,
    ssa: Ssa,
    ladder: DegradeLadder,
    /// This session's row of the batched predictor hidden state,
    /// `[predictor_hidden]`.
    hidden: Tensor,
    /// Last measured gaze (the predictor input and the hold-fixation
    /// anchor).
    last_gaze: GazePoint,
    /// The mask currently displayed to this user, `[crop, crop]` logits.
    last_mask: Option<Tensor>,
    /// Sampler geometry at nominal crop width.
    pipeline: PipelineConfig,
    stats: SessionStats,
}

impl Session {
    /// Materializes a session: generates its video from the spec's seed and
    /// calibrates SSA at the preset's paper resolution.
    pub fn new(spec: SessionSpec, frames_per_video: usize, predictor_hidden: usize) -> Self {
        let cfg = spec.scene.video_config(frames_per_video.max(1));
        let paper_side = cfg.dataset.paper_resolution;
        let pipeline = PipelineConfig::for_dataset(
            &cfg.dataset,
            cfg.dataset.resolution,
            cfg.dataset.resolution / 4,
        );
        let video = VideoSequence::generate(cfg, &mut seeded_rng(spec.seed));
        Self {
            spec,
            video,
            cursor: 0,
            ssa: Ssa::new(SsaConfig::paper_default(paper_side)),
            ladder: DegradeLadder::new(),
            hidden: Tensor::zeros(&[predictor_hidden]),
            last_gaze: GazePoint::center(),
            last_mask: None,
            pipeline,
            stats: SessionStats::default(),
        }
    }

    /// The spec this session was created from.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Rendered frame side of this session's video.
    pub fn resolution(&self) -> usize {
        self.video.config().dataset.resolution
    }

    /// Sampler σ in rendered-frame pixels (the paper's per-dataset σ scaled
    /// down to the functional resolution).
    pub fn sigma(&self) -> f32 {
        self.pipeline.sigma
    }

    /// Sampler spec warping this session's frame onto a `crop²` grid, with
    /// the σ widened by `√widen` on the widened rung (area factor `widen`).
    ///
    /// # Panics
    ///
    /// Panics if `crop` exceeds the rendered resolution or `widen < 0`.
    pub fn sampler_spec(&self, crop: usize, widen: f32) -> SamplerSpec {
        let n = self.resolution();
        SamplerSpec::new(n, n, crop, crop, self.sigma() * widen.max(1.0).sqrt())
    }

    /// Renders the next frame of the trace, looping when the video ends.
    pub fn next_frame(&mut self) -> Frame {
        let i = self.cursor % self.video.len();
        self.cursor += 1;
        self.video.frame(i)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Mutable lifetime counters (the server records per-tick outcomes).
    pub(crate) fn stats_mut(&mut self) -> &mut SessionStats {
        &mut self.stats
    }

    /// The SSA state machine.
    pub(crate) fn ssa_mut(&mut self) -> &mut Ssa {
        &mut self.ssa
    }

    /// The degradation ladder.
    pub(crate) fn ladder_mut(&mut self) -> &mut DegradeLadder {
        &mut self.ladder
    }

    /// This session's predictor hidden row.
    pub fn hidden(&self) -> &Tensor {
        &self.hidden
    }

    /// Replaces the predictor hidden row after a batched step.
    pub(crate) fn set_hidden(&mut self, h: Tensor) {
        self.hidden = h;
    }

    /// Last measured gaze.
    pub fn last_gaze(&self) -> GazePoint {
        self.last_gaze
    }

    /// Records a fresh measured gaze.
    pub(crate) fn set_last_gaze(&mut self, g: GazePoint) {
        self.last_gaze = g;
    }

    /// The currently displayed mask, if any frame has run yet.
    pub fn last_mask(&self) -> Option<&Tensor> {
        self.last_mask.as_ref()
    }

    /// Presents a freshly segmented mask.
    pub(crate) fn set_last_mask(&mut self, m: Tensor) {
        self.last_mask = Some(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_specs_are_deterministic_and_distinct() {
        let a = SessionSpec::nth(7, 0);
        let b = SessionSpec::nth(7, 1);
        assert_eq!(a, SessionSpec::nth(7, 0));
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.scene, ScenePreset::Aria);
        assert_eq!(b.scene, ScenePreset::Lvis);
        assert_eq!(SessionSpec::nth(7, 4).scene, ScenePreset::Aria);
    }

    #[test]
    fn session_loops_its_video() {
        let mut s = Session::new(SessionSpec::nth(3, 1), 4, 8);
        let first = s.next_frame();
        for _ in 0..3 {
            s.next_frame();
        }
        let looped = s.next_frame();
        assert_eq!(first.image.as_slice(), looped.image.as_slice());
        assert_eq!(s.resolution(), 96);
        assert!(s.sigma() > 0.0);
    }

    #[test]
    fn widened_spec_scales_sigma_by_sqrt_area() {
        let s = Session::new(SessionSpec::nth(3, 0), 2, 8);
        let base = s.sampler_spec(24, 1.0);
        let wide = s.sampler_spec(24, 4.0);
        assert!((wide.sigma - 2.0 * base.sigma).abs() < 1e-6);
    }
}
