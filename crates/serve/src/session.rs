//! Per-user serving state: one session owns a gaze trace + scene, its SSA
//! state machine, its degradation ladder, and its slice of the batched
//! predictor's hidden state. Everything *model*-sized is shared (see
//! [`crate::ServeModel`]); everything *user*-sized lives here.

use solo_core::resilience::{DegradeAction, DegradeLadder, FaultInjector, FaultPlan};
use solo_core::solonet::PipelineConfig;
use solo_core::ssa::{Ssa, SsaConfig};
use solo_gaze::GazePoint;
use solo_hw::soc::Dataset as HwDataset;
use solo_sampler::SamplerSpec;
use solo_scene::{Frame, VideoConfig, VideoSequence};
use solo_tensor::{seeded_rng, Tensor};

/// Scene preset a session streams, mirroring the resilience experiments'
/// four calibrated (video, SoC-dataset, paper-resolution) triples plus the
/// ROADMAP's two adversarial presets the chaos sweeps exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScenePreset {
    /// Egocentric AR viewing (Aria-like), 960 px paper frames.
    Aria,
    /// Cluttered static scenes (LVIS-like), 640 px paper frames.
    Lvis,
    /// Scene parsing (ADE20K-like), 512 px paper frames.
    Ade,
    /// Single moving object (DAVIS-like), 480 px paper frames.
    Davis,
    /// Adversarial: crowded small-object scenes (2× LVIS density at half
    /// the size); priced as LVIS by the SoC models.
    Crowded,
    /// Adversarial: rapid IOI switching (DAVIS-sized static scenes, short
    /// dwells); priced as DAVIS by the SoC models.
    Switching,
}

impl ScenePreset {
    /// The video generator for this preset.
    pub fn video_config(&self, frames: usize) -> VideoConfig {
        match self {
            ScenePreset::Aria => VideoConfig::aria_like(frames),
            ScenePreset::Lvis => VideoConfig::lvis_like(frames),
            ScenePreset::Ade => VideoConfig::ade_like(frames),
            ScenePreset::Davis => VideoConfig::davis_like(frames),
            ScenePreset::Crowded => VideoConfig::crowded_like(frames),
            ScenePreset::Switching => VideoConfig::switching_like(frames),
        }
    }

    /// The SoC cost-model dataset this preset is priced as.
    pub fn hw_dataset(&self) -> HwDataset {
        match self {
            ScenePreset::Aria => HwDataset::Aria,
            ScenePreset::Lvis | ScenePreset::Crowded => HwDataset::Lvis,
            ScenePreset::Ade => HwDataset::Ade,
            ScenePreset::Davis | ScenePreset::Switching => HwDataset::Davis,
        }
    }

    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ScenePreset::Aria => "aria",
            ScenePreset::Lvis => "lvis",
            ScenePreset::Ade => "ade",
            ScenePreset::Davis => "davis",
            ScenePreset::Crowded => "crowded",
            ScenePreset::Switching => "switching",
        }
    }
}

/// Everything needed to (re)create a session deterministically.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionSpec {
    /// Seed for the session's scene + gaze trace.
    pub seed: u64,
    /// Scene preset the session streams.
    pub scene: ScenePreset,
    /// This session's seeded fault plan ([`FaultPlan::none`] for a healthy
    /// sensor/tracker). Entirely session-local: the injector it seeds
    /// draws no shared entropy, so one session's faults can never perturb
    /// a batch-mate.
    pub plan: FaultPlan,
}

impl SessionSpec {
    /// A spec for session `i` of a sweep: presets round-robin and seeds
    /// derive from the sweep seed so any subset regenerates identically.
    /// Healthy by construction — no fault plan.
    pub fn nth(sweep_seed: u64, i: usize) -> Self {
        const PRESETS: [ScenePreset; 4] = [
            ScenePreset::Aria,
            ScenePreset::Lvis,
            ScenePreset::Ade,
            ScenePreset::Davis,
        ];
        Self {
            seed: sweep_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
            scene: PRESETS[i % PRESETS.len()],
            plan: FaultPlan::none(),
        }
    }

    /// A spec for chaos-sweep session `i`: rotates all six presets
    /// (including the adversarial pair) and, when `dropout > 0`, arms a
    /// seeded gaze-dropout fault plan derived from the session seed so
    /// replays are deterministic.
    pub fn chaos_nth(sweep_seed: u64, i: usize, dropout: f64) -> Self {
        const PRESETS: [ScenePreset; 6] = [
            ScenePreset::Aria,
            ScenePreset::Lvis,
            ScenePreset::Ade,
            ScenePreset::Davis,
            ScenePreset::Crowded,
            ScenePreset::Switching,
        ];
        let seed = sweep_seed ^ (0x517c_c1b7_2722_0a95u64.wrapping_mul(i as u64 + 1));
        let plan = if dropout > 0.0 {
            FaultPlan::dropout(seed ^ 0xfa57, dropout)
        } else {
            FaultPlan::none()
        };
        Self {
            seed,
            scene: PRESETS[i % PRESETS.len()],
            plan,
        }
    }

    /// Replaces the fault plan (builder-style).
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }
}

/// Counters one session accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SessionStats {
    /// Frames served (every tick the session was live).
    pub frames: usize,
    /// Frames where SOLONet ran (SSA decided run, budget admitted it).
    pub runs: usize,
    /// Frames served by SSA reuse or a degraded mask reuse.
    pub reuses: usize,
    /// Frames decided at a below-nominal ladder rung.
    pub degraded: usize,
    /// Frames at each ladder rung (nominal first).
    pub rung_frames: [usize; DegradeAction::RUNGS],
}

/// A restorable snapshot of one session's full serving state: SSA
/// calibration, ladder rung, predictor hidden row, held mask, fault
/// injector and frame cursor. Everything *except* the video frames, which
/// regenerate deterministically from the spec's seed — a restored session
/// resumes bit-identically from its seed + frame index.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    spec: SessionSpec,
    frames_per_video: usize,
    cursor: usize,
    ssa: Ssa,
    ladder: DegradeLadder,
    injector: FaultInjector,
    hidden: Tensor,
    last_gaze: GazePoint,
    last_mask: Option<Tensor>,
    stats: SessionStats,
}

impl SessionCheckpoint {
    /// The spec the checkpointed session was created from.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Frame index the checkpointed session had reached.
    pub fn cursor(&self) -> usize {
        self.cursor
    }
}

/// One live serving session (see the module docs).
#[derive(Debug)]
pub struct Session {
    spec: SessionSpec,
    /// Rendered frames. `None` while parked (quarantined): the frames are
    /// the one piece of state that regenerates from the seed, so parking
    /// drops them to free memory and the next rendered frame lazily
    /// regenerates the identical sequence.
    video: Option<VideoSequence>,
    video_cfg: VideoConfig,
    frames_per_video: usize,
    cursor: usize,
    ssa: Ssa,
    ladder: DegradeLadder,
    /// This session's seeded fault injector (a no-op for a healthy plan).
    injector: FaultInjector,
    /// This session's row of the batched predictor hidden state,
    /// `[predictor_hidden]`.
    hidden: Tensor,
    /// Last measured gaze (the predictor input and the hold-fixation
    /// anchor).
    last_gaze: GazePoint,
    /// The mask currently displayed to this user, `[crop, crop]` logits.
    last_mask: Option<Tensor>,
    /// Sampler geometry at nominal crop width.
    pipeline: PipelineConfig,
    stats: SessionStats,
}

impl Session {
    /// Materializes a session: generates its video from the spec's seed and
    /// calibrates SSA at the preset's paper resolution.
    pub fn new(spec: SessionSpec, frames_per_video: usize, predictor_hidden: usize) -> Self {
        let frames_per_video = frames_per_video.max(1);
        let cfg = spec.scene.video_config(frames_per_video);
        let paper_side = cfg.dataset.paper_resolution;
        let pipeline = PipelineConfig::for_dataset(
            &cfg.dataset,
            cfg.dataset.resolution,
            cfg.dataset.resolution / 4,
        );
        let video = VideoSequence::generate(cfg.clone(), &mut seeded_rng(spec.seed));
        Self {
            spec,
            video: Some(video),
            video_cfg: cfg,
            frames_per_video,
            cursor: 0,
            ssa: Ssa::new(SsaConfig::paper_default(paper_side)),
            ladder: DegradeLadder::new(),
            injector: FaultInjector::new(spec.plan),
            hidden: Tensor::zeros(&[predictor_hidden]),
            last_gaze: GazePoint::center(),
            last_mask: None,
            pipeline,
            stats: SessionStats::default(),
        }
    }

    /// The spec this session was created from.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Rendered frame side of this session's video.
    pub fn resolution(&self) -> usize {
        self.video_cfg.dataset.resolution
    }

    /// Snapshots the session's full restorable state. The video frames are
    /// deliberately excluded — they regenerate from `spec.seed`.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            spec: self.spec,
            frames_per_video: self.frames_per_video,
            cursor: self.cursor,
            ssa: self.ssa.clone(),
            ladder: self.ladder.clone(),
            injector: self.injector.clone(),
            hidden: self.hidden.clone(),
            last_gaze: self.last_gaze,
            last_mask: self.last_mask.clone(),
            stats: self.stats,
        }
    }

    /// Rebuilds a session from a checkpoint. The video regenerates lazily
    /// (and deterministically) at the next rendered frame, so
    /// checkpoint → restore → tick is bit-identical to never having been
    /// interrupted.
    pub fn restore(cp: &SessionCheckpoint) -> Self {
        let cfg = cp.spec.scene.video_config(cp.frames_per_video);
        let pipeline = PipelineConfig::for_dataset(
            &cfg.dataset,
            cfg.dataset.resolution,
            cfg.dataset.resolution / 4,
        );
        Self {
            spec: cp.spec,
            video: None,
            video_cfg: cfg,
            frames_per_video: cp.frames_per_video,
            cursor: cp.cursor,
            ssa: cp.ssa.clone(),
            ladder: cp.ladder.clone(),
            injector: cp.injector.clone(),
            hidden: cp.hidden.clone(),
            last_gaze: cp.last_gaze,
            last_mask: cp.last_mask.clone(),
            pipeline,
            stats: cp.stats,
        }
    }

    /// Parks the session (quarantine): drops the rendered video to free
    /// memory. The session keeps serving its held mask through
    /// [`Self::skip_frame`]; the next rendered frame regenerates the
    /// identical sequence from the seed.
    pub fn park(&mut self) {
        self.video = None;
    }

    /// Whether the session is parked (video dropped).
    pub fn is_parked(&self) -> bool {
        self.video.is_none()
    }

    /// Advances the frame cursor without rendering — the quarantined
    /// stub's tick: the user keeps their held mask while the stream moves
    /// on underneath.
    pub fn skip_frame(&mut self) {
        self.cursor += 1;
    }

    /// Frame index of the *next* frame this session will serve.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Sampler σ in rendered-frame pixels (the paper's per-dataset σ scaled
    /// down to the functional resolution).
    pub fn sigma(&self) -> f32 {
        self.pipeline.sigma
    }

    /// Sampler spec warping this session's frame onto a `crop²` grid, with
    /// the σ widened by `√widen` on the widened rung (area factor `widen`).
    ///
    /// # Panics
    ///
    /// Panics if `crop` exceeds the rendered resolution or `widen < 0`.
    pub fn sampler_spec(&self, crop: usize, widen: f32) -> SamplerSpec {
        let n = self.resolution();
        SamplerSpec::new(n, n, crop, crop, self.sigma() * widen.max(1.0).sqrt())
    }

    /// Renders the next frame of the trace, looping when the video ends.
    /// On a parked or freshly restored session this first regenerates the
    /// video from the spec's seed — the same bits [`Self::new`] produced.
    pub fn next_frame(&mut self) -> Frame {
        let cfg = self.video_cfg.clone();
        let seed = self.spec.seed;
        let video = self
            .video
            .get_or_insert_with(|| VideoSequence::generate(cfg, &mut seeded_rng(seed)));
        let i = self.cursor % video.len();
        self.cursor += 1;
        video.frame(i)
    }

    /// This session's fault injector (the supervised tick filters every
    /// gaze observation through it).
    pub(crate) fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Mutable lifetime counters (the server records per-tick outcomes).
    pub(crate) fn stats_mut(&mut self) -> &mut SessionStats {
        &mut self.stats
    }

    /// The SSA state machine.
    pub(crate) fn ssa_mut(&mut self) -> &mut Ssa {
        &mut self.ssa
    }

    /// The degradation ladder.
    pub(crate) fn ladder_mut(&mut self) -> &mut DegradeLadder {
        &mut self.ladder
    }

    /// Read-only ladder view (the supervisor's floor-dwell health signal).
    pub(crate) fn ladder(&self) -> &DegradeLadder {
        &self.ladder
    }

    /// This session's predictor hidden row.
    pub fn hidden(&self) -> &Tensor {
        &self.hidden
    }

    /// Replaces the predictor hidden row after a batched step.
    pub(crate) fn set_hidden(&mut self, h: Tensor) {
        self.hidden = h;
    }

    /// Last measured gaze.
    pub fn last_gaze(&self) -> GazePoint {
        self.last_gaze
    }

    /// Records a fresh measured gaze.
    pub(crate) fn set_last_gaze(&mut self, g: GazePoint) {
        self.last_gaze = g;
    }

    /// The currently displayed mask, if any frame has run yet.
    pub fn last_mask(&self) -> Option<&Tensor> {
        self.last_mask.as_ref()
    }

    /// Presents a freshly segmented mask.
    pub(crate) fn set_last_mask(&mut self, m: Tensor) {
        self.last_mask = Some(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_specs_are_deterministic_and_distinct() {
        let a = SessionSpec::nth(7, 0);
        let b = SessionSpec::nth(7, 1);
        assert_eq!(a, SessionSpec::nth(7, 0));
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.scene, ScenePreset::Aria);
        assert_eq!(b.scene, ScenePreset::Lvis);
        assert_eq!(SessionSpec::nth(7, 4).scene, ScenePreset::Aria);
    }

    #[test]
    fn session_loops_its_video() {
        let mut s = Session::new(SessionSpec::nth(3, 1), 4, 8);
        let first = s.next_frame();
        for _ in 0..3 {
            s.next_frame();
        }
        let looped = s.next_frame();
        assert_eq!(first.image.as_slice(), looped.image.as_slice());
        assert_eq!(s.resolution(), 96);
        assert!(s.sigma() > 0.0);
    }

    #[test]
    fn chaos_specs_rotate_all_six_presets_and_seed_their_plans() {
        let scenes: Vec<_> = (0..6)
            .map(|i| SessionSpec::chaos_nth(5, i, 0.3).scene)
            .collect();
        assert_eq!(
            scenes,
            vec![
                ScenePreset::Aria,
                ScenePreset::Lvis,
                ScenePreset::Ade,
                ScenePreset::Davis,
                ScenePreset::Crowded,
                ScenePreset::Switching,
            ]
        );
        let a = SessionSpec::chaos_nth(5, 2, 0.3);
        assert_eq!(a, SessionSpec::chaos_nth(5, 2, 0.3), "deterministic");
        assert!(!a.plan.is_disabled());
        assert_ne!(a.plan.seed, SessionSpec::chaos_nth(5, 3, 0.3).plan.seed);
        assert!(SessionSpec::chaos_nth(5, 2, 0.0).plan.is_disabled());
        assert!(SessionSpec::nth(5, 2).plan.is_disabled());
    }

    #[test]
    fn adversarial_presets_materialize_and_price_like_their_bases() {
        for (preset, hw) in [
            (ScenePreset::Crowded, HwDataset::Lvis),
            (ScenePreset::Switching, HwDataset::Davis),
        ] {
            assert_eq!(preset.hw_dataset(), hw);
            let spec = SessionSpec {
                seed: 9,
                scene: preset,
                plan: FaultPlan::none(),
            };
            let mut s = Session::new(spec, 4, 8);
            assert_eq!(s.next_frame().image.shape().dim(1), 96);
        }
    }

    #[test]
    fn restore_resumes_the_exact_frame_sequence() {
        let mut live = Session::new(SessionSpec::chaos_nth(13, 4, 0.5), 6, 8);
        for _ in 0..3 {
            live.next_frame();
        }
        let cp = live.checkpoint();
        assert_eq!(cp.cursor(), 3);
        let mut restored = Session::restore(&cp);
        assert!(restored.is_parked(), "restore regenerates lazily");
        for _ in 0..5 {
            let a = live.next_frame();
            let b = restored.next_frame();
            assert_eq!(a.image.as_slice(), b.image.as_slice());
            assert_eq!(a.gaze.point.x.to_bits(), b.gaze.point.x.to_bits());
        }
    }

    #[test]
    fn park_skip_and_regenerate_keep_the_cursor_honest() {
        let mut s = Session::new(SessionSpec::nth(17, 2), 5, 8);
        let mut twin = Session::new(SessionSpec::nth(17, 2), 5, 8);
        s.next_frame();
        twin.next_frame();
        s.park();
        assert!(s.is_parked());
        // Quarantined ticks advance the stream without rendering.
        s.skip_frame();
        s.skip_frame();
        twin.next_frame();
        twin.next_frame();
        assert_eq!(s.cursor(), twin.cursor());
        // Un-parking resumes on the same frame the healthy twin sees.
        let a = s.next_frame();
        let b = twin.next_frame();
        assert!(!s.is_parked());
        assert_eq!(a.image.as_slice(), b.image.as_slice());
    }

    #[test]
    fn widened_spec_scales_sigma_by_sqrt_area() {
        let s = Session::new(SessionSpec::nth(3, 0), 2, 8);
        let base = s.sampler_spec(24, 1.0);
        let wide = s.sampler_spec(24, 4.0);
        assert!((wide.sigma - 2.0 * base.sigma).abs() < 1e-6);
    }
}
