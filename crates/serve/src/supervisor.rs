//! Per-session supervision for the serving layer: health scoring,
//! quarantine, and exponential-backoff re-admission probes.
//!
//! The [`Supervisor`] is a pure state machine over slot indices — it never
//! touches sessions, models or budgets. Each supervised tick the server
//! feeds it one [`HealthSignal`] per live slot and it answers which slots
//! to quarantine; for quarantined slots it schedules probes and holds the
//! [`SessionCheckpoint`] the probe restores from. Keeping the machine
//! session-free makes the quarantine policy unit-testable in isolation
//! and keeps this hot path trivially panic-free.

use solo_core::resilience::{FrameOutcome, SoloError};

use crate::session::SessionCheckpoint;

/// Supervision thresholds and probe backoff knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Consecutive ticks a session may overrun its envelope slice before
    /// quarantine.
    pub overrun_limit: usize,
    /// Consecutive ladder-floor (mask-reuse rung) decisions before
    /// quarantine — a session pinned to the floor pays for ticks that
    /// serve a stale mask.
    pub floor_dwell_limit: usize,
    /// Consecutive tracker-unusable frames before quarantine.
    pub loss_streak_limit: usize,
    /// Ticks from quarantine to the first re-admission probe; subsequent
    /// probes double the wait.
    pub probe_backoff_ticks: usize,
    /// Cap on the doubled backoff.
    pub probe_backoff_cap: usize,
}

impl SupervisorConfig {
    /// Defaults tuned to the chaos sweeps: quarantine after 4 sliced
    /// overruns, 8 floor decisions or 18 lost frames (inside the dropout
    /// plan's 30–80-frame outages, so deep outages reliably quarantine);
    /// probe at 4 ticks doubling to 32.
    pub fn paper_default() -> Self {
        Self {
            overrun_limit: 4,
            floor_dwell_limit: 8,
            loss_streak_limit: 18,
            probe_backoff_ticks: 4,
            probe_backoff_cap: 32,
        }
    }

    /// Validates every knob's documented range.
    pub fn validate(&self) -> FrameOutcome<()> {
        if self.overrun_limit == 0
            || self.floor_dwell_limit == 0
            || self.loss_streak_limit == 0
            || self.probe_backoff_ticks == 0
        {
            return Err(SoloError::InvalidConfig(
                "supervisor limits and probe backoff must be nonzero",
            ));
        }
        if self.probe_backoff_cap < self.probe_backoff_ticks {
            return Err(SoloError::InvalidConfig(
                "probe_backoff_cap must be >= probe_backoff_ticks",
            ));
        }
        Ok(())
    }
}

/// One live slot's health signals for one supervised tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSignal {
    /// Whether the tracker delivered a usable gaze this frame.
    pub tracker_usable: bool,
    /// Whether this session's tick charge exceeded its envelope slice.
    pub slice_overrun: bool,
    /// The session ladder's consecutive floor-rung dwell.
    pub floor_dwell: usize,
}

/// Per-slot supervision state.
#[derive(Debug, Clone)]
enum SlotState {
    /// Served in the batched dispatch; streaks build toward quarantine.
    Live {
        overrun_streak: usize,
        loss_streak: usize,
    },
    /// Out of the batched dispatch, serving a held-state stub.
    Quarantined {
        /// Snapshot taken at quarantine (updated by each failed probe's
        /// injector advance) — what a probe restores from.
        checkpoint: Box<SessionCheckpoint>,
        /// Tick of the next re-admission probe.
        next_probe: usize,
        /// Current backoff (doubles per failed probe, capped).
        backoff: usize,
        /// Tick the quarantine started.
        since: usize,
    },
}

impl SlotState {
    fn live() -> Self {
        SlotState::Live {
            overrun_streak: 0,
            loss_streak: 0,
        }
    }
}

/// The supervision state machine (see the module docs).
#[derive(Debug, Clone)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    slots: Vec<SlotState>,
    quarantines: usize,
    probes: usize,
    readmissions: usize,
}

impl Supervisor {
    /// A supervisor with no slots yet.
    ///
    /// # Errors
    ///
    /// Returns [`SoloError::InvalidConfig`] when `cfg` fails validation.
    pub fn new(cfg: SupervisorConfig) -> FrameOutcome<Self> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            slots: Vec::new(),
            quarantines: 0,
            probes: 0,
            readmissions: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Registers a newly admitted slot (healthy, zero streaks).
    pub(crate) fn on_admit(&mut self) {
        self.slots.push(SlotState::live());
    }

    /// Whether slot `i` is quarantined. Out-of-range slots read as live.
    pub fn is_quarantined(&self, i: usize) -> bool {
        matches!(self.slots.get(i), Some(SlotState::Quarantined { .. }))
    }

    /// Number of currently quarantined slots.
    pub fn quarantined_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, SlotState::Quarantined { .. }))
            .count()
    }

    /// Whether quarantined slot `i` is due a re-admission probe at `now`.
    pub fn probe_due(&self, i: usize, now: usize) -> bool {
        match self.slots.get(i) {
            Some(SlotState::Quarantined { next_probe, .. }) => now >= *next_probe,
            _ => false,
        }
    }

    /// The checkpoint a probe of slot `i` restores from.
    pub(crate) fn checkpoint(&self, i: usize) -> Option<&SessionCheckpoint> {
        match self.slots.get(i) {
            Some(SlotState::Quarantined { checkpoint, .. }) => Some(checkpoint),
            _ => None,
        }
    }

    /// Quarantines slot `i`, holding its restore checkpoint. The first
    /// probe is scheduled `probe_backoff_ticks` after `now`.
    pub(crate) fn quarantine(&mut self, i: usize, checkpoint: SessionCheckpoint, now: usize) {
        if let Some(slot) = self.slots.get_mut(i) {
            let backoff = self.cfg.probe_backoff_ticks;
            *slot = SlotState::Quarantined {
                checkpoint: Box::new(checkpoint),
                next_probe: now + backoff,
                backoff,
                since: now,
            };
            self.quarantines += 1;
        }
    }

    /// Records a probe outcome for slot `i`: a healthy probe re-admits
    /// the slot (streaks cleared); a failed one stores the advanced
    /// checkpoint and doubles the backoff (capped).
    pub(crate) fn record_probe(
        &mut self,
        i: usize,
        now: usize,
        healthy: bool,
        advanced: Option<SessionCheckpoint>,
    ) {
        self.probes += 1;
        let cap = self.cfg.probe_backoff_cap;
        if let Some(slot) = self.slots.get_mut(i) {
            if healthy {
                *slot = SlotState::live();
                self.readmissions += 1;
            } else if let SlotState::Quarantined {
                checkpoint,
                next_probe,
                backoff,
                ..
            } = slot
            {
                if let Some(cp) = advanced {
                    *checkpoint = Box::new(cp);
                }
                *backoff = backoff.saturating_mul(2).min(cap);
                *next_probe = now + *backoff;
            }
        }
    }

    /// Scores one supervised tick: `signals[i]` carries live slot `i`'s
    /// health signals (`None` for quarantined or probed slots). Streaks
    /// update in place; the returned indices are the slots whose streaks
    /// crossed a quarantine threshold this tick — the server parks them
    /// and hands their checkpoints back via [`Self::quarantine`].
    ///
    /// This is the supervision hot path: it must stay panic-free (lint
    /// rule P2 walks it), so every slot access is checked and a
    /// signals/slots length mismatch degrades to "no decision" for the
    /// missing slots rather than panicking mid-tick.
    pub fn tick(&mut self, signals: &[Option<HealthSignal>]) -> Vec<usize> {
        let mut verdicts = Vec::new();
        for (i, sig) in signals.iter().enumerate() {
            let Some(sig) = sig else { continue };
            let Some(SlotState::Live {
                overrun_streak,
                loss_streak,
            }) = self.slots.get_mut(i)
            else {
                continue;
            };
            *overrun_streak = if sig.slice_overrun {
                *overrun_streak + 1
            } else {
                0
            };
            *loss_streak = if sig.tracker_usable {
                0
            } else {
                *loss_streak + 1
            };
            if *overrun_streak >= self.cfg.overrun_limit
                || *loss_streak >= self.cfg.loss_streak_limit
                || sig.floor_dwell >= self.cfg.floor_dwell_limit
            {
                verdicts.push(i);
            }
        }
        verdicts
    }

    /// Total quarantine events so far.
    pub fn quarantines(&self) -> usize {
        self.quarantines
    }

    /// Total re-admission probes run so far.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Total successful re-admissions so far.
    pub fn readmissions(&self) -> usize {
        self.readmissions
    }

    /// Ticks quarantined slot `i` has been parked, as of `now`.
    pub fn quarantined_for(&self, i: usize, now: usize) -> Option<usize> {
        match self.slots.get(i) {
            Some(SlotState::Quarantined { since, .. }) => Some(now.saturating_sub(*since)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionSpec};

    fn sup() -> Supervisor {
        match Supervisor::new(SupervisorConfig::paper_default()) {
            Ok(s) => s,
            Err(e) => panic!("paper default must validate: {e}"),
        }
    }

    fn cp() -> SessionCheckpoint {
        Session::new(SessionSpec::nth(1, 0), 4, 8).checkpoint()
    }

    #[test]
    fn config_validation_rejects_zero_limits() {
        let mut cfg = SupervisorConfig::paper_default();
        cfg.loss_streak_limit = 0;
        assert!(cfg.validate().is_err());
        cfg = SupervisorConfig::paper_default();
        cfg.probe_backoff_cap = 1;
        assert!(cfg.validate().is_err(), "cap below base backoff");
        assert!(SupervisorConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn loss_streak_quarantines_at_the_limit_and_resets_on_recovery() {
        let mut s = sup();
        s.on_admit();
        s.on_admit();
        let lost = HealthSignal {
            tracker_usable: false,
            ..HealthSignal::default()
        };
        let fine = HealthSignal {
            tracker_usable: true,
            ..HealthSignal::default()
        };
        let limit = s.config().loss_streak_limit;
        for _ in 0..limit - 1 {
            assert!(s.tick(&[Some(lost), Some(fine)]).is_empty());
        }
        // A usable frame clears the streak; the limit restarts.
        assert!(s.tick(&[Some(fine), Some(fine)]).is_empty());
        for t in 1..=limit {
            let v = s.tick(&[Some(lost), Some(fine)]);
            if t < limit {
                assert!(v.is_empty(), "tick {t}");
            } else {
                assert_eq!(v, vec![0], "slot 0 quarantines at the limit");
            }
        }
    }

    #[test]
    fn probe_backoff_doubles_to_the_cap_and_readmission_resets() {
        let mut s = sup();
        s.on_admit();
        let base = s.config().probe_backoff_ticks;
        s.quarantine(0, cp(), 10);
        assert!(s.is_quarantined(0));
        assert_eq!(s.quarantined_count(), 1);
        assert!(!s.probe_due(0, 10 + base - 1));
        assert!(s.probe_due(0, 10 + base));
        // Failed probes: backoff 4 → 8 → 16 → 32 → 32 (capped).
        let mut now = 10 + base;
        let mut expect = base;
        for _ in 0..4 {
            s.record_probe(0, now, false, Some(cp()));
            expect = (expect * 2).min(s.config().probe_backoff_cap);
            assert!(!s.probe_due(0, now + expect - 1));
            assert!(s.probe_due(0, now + expect));
            now += expect;
        }
        assert_eq!(expect, s.config().probe_backoff_cap);
        assert_eq!(s.quarantined_for(0, now), Some(now - 10));
        // A healthy probe re-admits with cleared streaks.
        s.record_probe(0, now, true, None);
        assert!(!s.is_quarantined(0));
        assert_eq!(s.readmissions(), 1);
        assert_eq!(s.probes(), 5);
        assert_eq!(s.quarantines(), 1);
        assert!(s.checkpoint(0).is_none());
    }

    #[test]
    fn quarantined_and_missing_slots_never_panic_the_tick() {
        let mut s = sup();
        s.on_admit();
        s.quarantine(0, cp(), 1);
        // Signals for a quarantined slot and for slots beyond the vec.
        let sig = Some(HealthSignal {
            slice_overrun: true,
            ..HealthSignal::default()
        });
        assert!(s.tick(&[sig, sig, None, sig]).is_empty());
    }

    #[test]
    fn overrun_and_floor_dwell_also_trigger() {
        let mut s = sup();
        s.on_admit();
        let overrun = HealthSignal {
            tracker_usable: true,
            slice_overrun: true,
            floor_dwell: 0,
        };
        for _ in 0..s.config().overrun_limit - 1 {
            assert!(s.tick(&[Some(overrun)]).is_empty());
        }
        assert_eq!(s.tick(&[Some(overrun)]), vec![0]);

        let mut s = sup();
        s.on_admit();
        let floored = HealthSignal {
            tracker_usable: true,
            slice_overrun: false,
            floor_dwell: s.config().floor_dwell_limit,
        };
        assert_eq!(s.tick(&[Some(floored)]), vec![0]);
    }
}
