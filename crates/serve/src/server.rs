//! The multi-session server: a frame-tick scheduler multiplexing N
//! sessions over one shared model and one shared compute budget.
//!
//! Each tick the server advances every live session one frame, runs the
//! gaze predictor **once** for all sessions (the RNN time-step loop batched
//! across the session dimension), lets each session's SSA decide run vs
//! reuse, prices the tick's shared compute against a
//! [`FrameBudget`], and finally segments every running session's warped
//! crop through **one** cross-session batched inference pass.
//!
//! Two invariants the tests pin:
//!
//! * **Batch size never changes outputs.** `cfg.batch` only chunks the
//!   fused GEMM dispatches, which are bit-identical to per-session calls
//!   by construction; all *modeled pricing* is keyed to the live session
//!   count, never to `cfg.batch`.
//! * **Degradation is per-session.** Under overload, each session walks
//!   its own [`DegradeLadder`] — sessions early in the tick order keep
//!   running while later ones degrade, and a session's ladder resets as
//!   soon as the budget re-admits it.
//!
//! # Supervised serving
//!
//! [`Server::tick_supervised`] is the resilient variant: every gaze
//! observation filters through the session's own seeded
//! [`FaultInjector`](solo_core::resilience::FaultInjector), a
//! [`Supervisor`] scores per-session health, and chronically unhealthy
//! sessions quarantine into a held-state stub (freeing envelope budget
//! for the queue) until an exponential-backoff probe re-admits them from
//! a [`SessionCheckpoint`]. Three more invariants the chaos tests pin:
//!
//! * **Fault isolation.** A session's faults are drawn from its own
//!   injector and its tick is gated against its own slice of the
//!   envelope, priced at the *total* slot count — so a neighbor's faults,
//!   quarantine or re-admission never changes a healthy session's served
//!   masks (bit-identical, batched GEMM rows are row-local).
//! * **Supervision is pay-as-faulted.** With every plan disabled,
//!   supervised serving is bit-identical to [`Server::tick`] (reports
//!   included) whenever the fleet fits the admission envelope.
//! * **Deterministic restore.** checkpoint → park → probe → restore
//!   replays the exact frame and fault sequence an uninterrupted session
//!   would have seen (the probe fast-forwards the injector through every
//!   skipped frame).
//!
//! [`DegradeLadder`]: solo_core::resilience::DegradeLadder

use std::collections::VecDeque;
use std::sync::Arc;

use solo_core::metrics::{binary_iou, IouAccumulator};
use solo_core::resilience::{DegradeAction, FrameOutcome, ResilienceConfig, SoloError};
use solo_gaze::GazePoint;
use solo_hw::soc::{Backbone, CostBreakdown, SocModel};
use solo_hw::timing::FrameBudget;
use solo_hw::Latency;
use solo_sampler::{gaze_saliency, uniform_subsample, IndexMap};
use solo_tensor::Tensor;

use crate::model::{Precision, ServeModel};
use crate::session::{Session, SessionCheckpoint, SessionSpec, SessionStats};
use crate::supervisor::{HealthSignal, Supervisor, SupervisorConfig};

/// Gaussian width (as a grid fraction) of the gaze saliency prior.
const SALIENCY_SIGMA_FRAC: f32 = 0.15;
/// Peripheral saliency pedestal.
const SALIENCY_FLOOR: f32 = 0.02;

/// Server knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Hard cap on concurrently live sessions.
    pub max_sessions: usize,
    /// Waiting-room capacity; arrivals beyond it are rejected.
    pub queue_cap: usize,
    /// GEMM fusion chunk: how many sessions' crops stack into one batched
    /// dispatch. Purely a scheduling knob — outputs are bit-identical at
    /// any value (see the module docs).
    pub batch: usize,
    /// Per-tick shared-compute deadline.
    pub deadline: Latency,
    /// Fraction of the deadline admission control may fill with modeled
    /// steady-state cost, in `(0, 1]`. The reserve absorbs SSA run-rate
    /// jitter before the per-tick ladder has to.
    pub admission_fill: f64,
    /// Numeric path of the segmentation head.
    pub precision: Precision,
    /// Frames per generated session video (sessions loop their trace).
    pub frames_per_video: usize,
    /// Ladder thresholds driving per-session overload degradation.
    pub resilience: ResilienceConfig,
    /// Supervision thresholds (quarantine + probe backoff) for
    /// [`Server::tick_supervised`].
    pub supervisor: SupervisorConfig,
    /// Cost-model backbone sessions are priced as.
    pub backbone: Backbone,
}

impl ServerConfig {
    /// Defaults: up to 64 sessions, a 16-deep queue, a 60 ms tick (the
    /// paper's SOLO latency envelope, matching
    /// [`ResilienceConfig::paper_default`]), f32 inference, 90 % admission
    /// fill.
    pub fn paper_default() -> Self {
        Self {
            max_sessions: 64,
            queue_cap: 16,
            batch: 8,
            deadline: Latency::from_ms(60.0),
            admission_fill: 0.9,
            precision: Precision::F32,
            frames_per_video: 64,
            resilience: ResilienceConfig::paper_default(),
            supervisor: SupervisorConfig::paper_default(),
            backbone: Backbone::Sf,
        }
    }

    /// Validates every knob's documented range.
    pub fn validate(&self) -> FrameOutcome<()> {
        if self.max_sessions == 0 || self.batch == 0 || self.frames_per_video == 0 {
            return Err(SoloError::InvalidConfig(
                "max_sessions, batch and frames_per_video must be nonzero",
            ));
        }
        if !(self.deadline > Latency::ZERO) {
            return Err(SoloError::InvalidConfig("deadline must be positive"));
        }
        if !(0.0 < self.admission_fill && self.admission_fill <= 1.0) {
            return Err(SoloError::InvalidConfig("admission_fill must be in (0, 1]"));
        }
        self.supervisor.validate()?;
        self.resilience.validate()
    }
}

/// Why admission control turned a session away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The spec's fault plan failed validation (malformed rates/windows).
    InvalidFaultPlan,
    /// Waiting room full (or the session cap reached).
    QueueFull,
}

/// Admission control's verdict on one arriving session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Live immediately; carries the session's index.
    Admitted(usize),
    /// Parked in the waiting room; promoted when capacity frees up.
    Queued,
    /// Turned away, with the reason.
    Rejected {
        /// Why the session was turned away.
        reason: RejectReason,
    },
}

/// What one tick did, session counts first.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TickReport {
    /// Live sessions this tick.
    pub sessions: usize,
    /// Sessions whose crop was segmented this tick.
    pub ran: usize,
    /// Sessions served from their previous mask (SSA reuse or degraded).
    pub reused: usize,
    /// Sessions decided at a below-nominal ladder rung.
    pub degraded: usize,
    /// Whether the modeled shared compute overran the tick deadline even
    /// after every session degraded as far as its ladder allows.
    pub overrun: bool,
    /// Modeled shared compute charged this tick, in ms.
    pub spent_ms: f64,
    /// Sessions promoted from the queue at the top of the tick.
    pub promoted: usize,
    /// Sessions at each ladder rung this tick (nominal first).
    pub rung_sessions: [usize; DegradeAction::RUNGS],
}

/// What one supervised tick did: the plain tick counters plus the
/// supervision outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SupervisedTickReport {
    /// The plain serving counters (quarantined stubs count as reuses at
    /// the mask-reuse rung; successful probes count as nominal runs).
    pub base: TickReport,
    /// Sessions that spent this tick quarantined (stub or probed).
    pub quarantined: usize,
    /// Sessions newly quarantined at the end of this tick.
    pub newly_quarantined: usize,
    /// Re-admission probes run this tick.
    pub probes: usize,
    /// Sessions re-admitted by a successful probe this tick.
    pub readmitted: usize,
    /// Live sessions whose injector fired at least one fault this tick.
    pub injected: usize,
}

/// What a session is asked to do this tick, after SSA + ladder + budget.
enum Work {
    /// Segment the crop at this gaze with this widen area factor.
    Run { gaze: GazePoint, widen: f32 },
    /// Segment a uniform full-frame subsample.
    RunUniform,
    /// Present the previous mask.
    Reuse,
}

/// The multi-session server (see the module docs).
pub struct Server {
    model: Arc<ServeModel>,
    cfg: ServerConfig,
    soc: SocModel,
    sessions: Vec<Session>,
    queue: VecDeque<SessionSpec>,
    supervisor: Supervisor,
    ticks: usize,
    overruns: usize,
    frames_served: usize,
    frames_ran: usize,
    rejects: usize,
    /// Oracle round-trip b-IoU per ladder rung, accumulated by supervised
    /// ticks when `cfg.resilience.score_round_trip` is set.
    rung_scores: [IouAccumulator; DegradeAction::RUNGS],
}

impl Server {
    /// Creates a server over a shared model.
    ///
    /// # Errors
    ///
    /// Returns [`SoloError::InvalidConfig`] when `cfg` fails validation.
    pub fn new(model: Arc<ServeModel>, cfg: ServerConfig) -> FrameOutcome<Self> {
        cfg.validate()?;
        let supervisor = Supervisor::new(cfg.supervisor)?;
        Ok(Self {
            model,
            cfg,
            soc: SocModel::default(),
            sessions: Vec::new(),
            queue: VecDeque::new(),
            supervisor,
            ticks: 0,
            overruns: 0,
            frames_served: 0,
            frames_ran: 0,
            rejects: 0,
            rung_scores: Default::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Live sessions.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Sessions parked in the waiting room.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Ticks served so far.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Ticks whose shared compute overran the deadline after maximal
    /// degradation.
    pub fn overruns(&self) -> usize {
        self.overruns
    }

    /// Total session-frames served (sessions × ticks they were live).
    pub fn frames_served(&self) -> usize {
        self.frames_served
    }

    /// Total session-frames that ran segmentation.
    pub fn frames_ran(&self) -> usize {
        self.frames_ran
    }

    /// Sessions turned away by admission control so far.
    pub fn rejects(&self) -> usize {
        self.rejects
    }

    /// The supervision state machine (quarantine + probe counters).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Per-rung oracle round-trip scores from supervised ticks:
    /// `(frames scored, mean b-IoU)` per ladder rung, nominal first.
    /// Empty unless `cfg.resilience.score_round_trip` is set.
    pub fn rung_scores(&self) -> [(usize, f32); DegradeAction::RUNGS] {
        std::array::from_fn(|r| (self.rung_scores[r].len(), self.rung_scores[r].b_iou()))
    }

    /// Modeled per-session shared compute (ESNet + segmentation) at a live
    /// session count of `s` — the marginal price admission charges and the
    /// per-run cost the tick budget charges. Batching amortizes the
    /// accelerator dispatch across sessions, so this falls as `s` grows.
    ///
    /// Priced worst-case across the live presets (the costliest dataset
    /// among the sessions), so admission never under-prices a mixed fleet.
    fn shared_cost_per_run(&self, s: usize, extra: Option<&SessionSpec>) -> Latency {
        let mut worst = Latency::ZERO;
        for ds in self
            .sessions
            .iter()
            .map(|ses| ses.spec().scene)
            .chain(extra.map(|e| e.scene))
        {
            let bd = self
                .soc
                .batched_solo_path(self.cfg.backbone, ds.hw_dataset(), s.max(1));
            let run = bd.esnet.0 + bd.segmentation.0;
            if run > worst {
                worst = run;
            }
        }
        worst
    }

    /// Shared cost of a reuse tick for one session: ESNet still runs (the
    /// SSA needs gaze + preview every frame), segmentation does not.
    fn shared_cost_skip(&self, spec: &SessionSpec) -> Latency {
        self.soc.skip_path(spec.scene.hw_dataset()).esnet.0
    }

    /// Shared cost of a uniform-fallback run for one session.
    fn shared_cost_uniform(&self, spec: &SessionSpec) -> Latency {
        let bd: CostBreakdown = self
            .soc
            .uniform_fallback_path(self.cfg.backbone, spec.scene.hw_dataset());
        bd.esnet.0 + bd.segmentation.0
    }

    /// Whether a fleet of `live` non-quarantined sessions (optionally
    /// including the arriving `extra`) fits the steady-state admission
    /// envelope: every live session running every tick at the batched
    /// marginal price must fit inside `admission_fill · deadline`.
    /// Quarantined sessions are excluded on both axes — their stub serves
    /// zero shared compute, so quarantine frees envelope for the queue.
    fn fits(&self, live: usize, extra: Option<&SessionSpec>) -> bool {
        if live == 0 {
            return true;
        }
        let mut worst = Latency::ZERO;
        for ds in self
            .sessions
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.supervisor.is_quarantined(*i))
            .map(|(_, ses)| ses.spec().scene)
            .chain(extra.map(|e| e.scene))
        {
            let bd = self
                .soc
                .batched_solo_path(self.cfg.backbone, ds.hw_dataset(), live.max(1));
            let run = bd.esnet.0 + bd.segmentation.0;
            if run > worst {
                worst = run;
            }
        }
        worst.ms() * live as f64 <= self.cfg.deadline.ms() * self.cfg.admission_fill
    }

    /// Live (non-quarantined) session count.
    fn live_count(&self) -> usize {
        self.sessions.len() - self.supervisor.quarantined_count()
    }

    /// Admission control: rejects a malformed fault plan outright, admits
    /// the session if the post-admission fleet still fits the steady-state
    /// envelope, queues it if the waiting room has space, rejects it
    /// otherwise.
    pub fn admit(&mut self, spec: SessionSpec) -> AdmitOutcome {
        if spec.plan.validate().is_err() {
            self.rejects += 1;
            return AdmitOutcome::Rejected {
                reason: RejectReason::InvalidFaultPlan,
            };
        }
        let s = self.sessions.len();
        if s < self.cfg.max_sessions && self.fits(self.live_count() + 1, Some(&spec)) {
            self.sessions.push(Session::new(
                spec,
                self.cfg.frames_per_video,
                self.model.config().predictor_hidden,
            ));
            self.supervisor.on_admit();
            AdmitOutcome::Admitted(s)
        } else if self.queue.len() < self.cfg.queue_cap {
            self.queue.push_back(spec);
            AdmitOutcome::Queued
        } else {
            self.rejects += 1;
            AdmitOutcome::Rejected {
                reason: RejectReason::QueueFull,
            }
        }
    }

    /// Promotes queued sessions while the envelope admits them.
    fn promote(&mut self) -> usize {
        let mut promoted = 0;
        while let Some(spec) = self.queue.front().copied() {
            if self.sessions.len() >= self.cfg.max_sessions
                || !self.fits(self.live_count() + 1, Some(&spec))
            {
                break;
            }
            self.queue.pop_front();
            self.sessions.push(Session::new(
                spec,
                self.cfg.frames_per_video,
                self.model.config().predictor_hidden,
            ));
            self.supervisor.on_admit();
            promoted += 1;
        }
        promoted
    }

    /// Serves one frame tick to every live session (see the module docs
    /// for the phase order). Sessions' fault plans are ignored — this is
    /// the unsupervised fast path; see [`Self::tick_supervised`].
    pub fn tick(&mut self) -> TickReport {
        let mut report = TickReport {
            promoted: self.promote(),
            ..TickReport::default()
        };
        let s = self.sessions.len();
        report.sessions = s;
        self.ticks += 1;
        if s == 0 {
            return report;
        }
        let crop = self.model.config().crop_side;

        // Phase 1: advance every session one frame.
        let frames: Vec<_> = self.sessions.iter_mut().map(Session::next_frame).collect();

        // Phase 2: one batched predictor step across the session dimension.
        // Input is each session's last *measured* gaze; the output forecast
        // substitutes for the live sample while its phase is suppressed.
        let mut gaze_rows = Vec::with_capacity(s * 2);
        let mut hidden_rows = Vec::with_capacity(s * self.model.config().predictor_hidden);
        for ses in &self.sessions {
            let g = ses.last_gaze();
            gaze_rows.extend_from_slice(&[g.x, g.y]);
            hidden_rows.extend_from_slice(ses.hidden().as_slice());
        }
        let gazes = Tensor::from_vec(gaze_rows, &[s, 2]);
        let hidden = Tensor::from_vec(hidden_rows, &[s, self.model.config().predictor_hidden]);
        let (next_hidden, deltas) = self.model.predict_batch(&gazes, &hidden);
        let dh = self.model.config().predictor_hidden;
        for (i, ses) in self.sessions.iter_mut().enumerate() {
            ses.set_hidden(Tensor::from_vec(
                next_hidden.as_slice()[i * dh..(i + 1) * dh].to_vec(),
                &[dh],
            ));
        }

        // Phase 3: per-session SSA decision, then budget-gated degradation
        // in session order. All pricing is keyed to the live session count
        // `s` — never to `cfg.batch`. Costs are priced up front so the
        // per-session loop holds only the session borrow.
        let run_cost = self.shared_cost_per_run(s, None);
        let skip_costs: Vec<Latency> = self
            .sessions
            .iter()
            .map(|ses| self.shared_cost_skip(ses.spec()))
            .collect();
        let uniform_costs: Vec<Latency> = self
            .sessions
            .iter()
            .map(|ses| self.shared_cost_uniform(ses.spec()))
            .collect();
        let widen_costs: Vec<Latency> = self
            .sessions
            .iter()
            .map(|ses| {
                let bd = self.soc.degraded_solo_path(
                    self.cfg.backbone,
                    ses.spec().scene.hw_dataset(),
                    f64::from(self.cfg.resilience.widen_factor),
                    &[],
                );
                bd.esnet.0 + bd.segmentation.0
            })
            .collect();
        let mut budget = FrameBudget::new(self.cfg.deadline);
        budget.start_frame();
        let mut work = Vec::with_capacity(s);
        for (i, frame) in frames.iter().enumerate() {
            let ses = &mut self.sessions[i];
            let suppressed = frame.gaze.phase.is_suppressed();
            let gaze = if suppressed {
                // Saccadic suppression: steer the crop by the forecast
                // landing point instead of the mid-flight sample.
                let d = &deltas.as_slice()[i * 2..(i + 1) * 2];
                let g = ses.last_gaze();
                GazePoint::new(g.x + d[0], g.y + d[1])
            } else {
                ses.set_last_gaze(frame.gaze.point);
                frame.gaze.point
            };
            let preview = uniform_subsample(&frame.image, crop, crop);
            let wants_run = ses.ssa_mut().step(&preview, gaze, suppressed).must_run()
                || ses.last_mask().is_none();
            preview.recycle();

            let (action, w) = if !wants_run {
                ses.ladder_mut().reset();
                (DegradeAction::Nominal, Work::Reuse)
            } else if !budget.would_overrun(run_cost) {
                ses.ladder_mut().reset();
                (DegradeAction::Nominal, Work::Run { gaze, widen: 1.0 })
            } else {
                // Overload: this session walks its ladder. Hold presents
                // the last mask; widen retries a degraded (widened) run;
                // uniform retries the gaze-free fallback; reuse is the
                // floor. A rung whose retry still overruns falls through
                // to mask reuse for this tick.
                let action = ses.ladder_mut().decide(&self.cfg.resilience);
                let w = match action {
                    DegradeAction::WidenCrop { factor } => {
                        if !budget.would_overrun(widen_costs[i]) {
                            Work::Run {
                                gaze,
                                widen: factor,
                            }
                        } else {
                            Work::Reuse
                        }
                    }
                    DegradeAction::UniformFallback => {
                        if !budget.would_overrun(uniform_costs[i]) {
                            Work::RunUniform
                        } else {
                            Work::Reuse
                        }
                    }
                    _ => Work::Reuse,
                };
                (action, w)
            };

            let charge = match &w {
                Work::Run { widen, .. } if *widen > 1.0 => widen_costs[i],
                Work::Run { .. } => run_cost,
                Work::RunUniform => uniform_costs[i],
                Work::Reuse => skip_costs[i],
            };
            if !budget.charge(charge) {
                report.overrun = true;
            }

            let st = ses.stats_mut();
            st.frames += 1;
            st.rung_frames[action.rung()] += 1;
            report.rung_sessions[action.rung()] += 1;
            if action.is_degraded() {
                st.degraded += 1;
                report.degraded += 1;
            }
            work.push(w);
        }
        report.spent_ms = budget.spent().ms();
        if report.overrun {
            self.overruns += 1;
        }

        // Phase 4: build every running session's warped crop, then segment
        // them all through the batched head in `cfg.batch`-sized chunks.
        let mut run_idx = Vec::new();
        let mut crops = Vec::new();
        for (i, w) in work.iter().enumerate() {
            let ses = &self.sessions[i];
            let map = match w {
                Work::Run { gaze, widen } => {
                    let sal = gaze_saliency(
                        crop,
                        crop,
                        (gaze.x, gaze.y),
                        SALIENCY_SIGMA_FRAC,
                        SALIENCY_FLOOR,
                    );
                    let map = IndexMap::from_saliency(&ses.sampler_spec(crop, *widen), &sal);
                    sal.recycle();
                    map
                }
                Work::RunUniform => IndexMap::uniform(&ses.sampler_spec(crop, 1.0)),
                Work::Reuse => continue,
            };
            crops.push(map.sample_bilinear(&frames[i].image));
            run_idx.push(i);
        }
        for chunk_start in (0..crops.len()).step_by(self.cfg.batch) {
            let chunk_end = (chunk_start + self.cfg.batch).min(crops.len());
            let masks = self
                .model
                .infer_batch(&crops[chunk_start..chunk_end], self.cfg.precision);
            for (off, mask) in masks.into_iter().enumerate() {
                self.sessions[run_idx[chunk_start + off]].set_last_mask(mask);
            }
        }
        for c in crops {
            c.recycle();
        }
        report.ran = run_idx.len();
        report.reused = s - run_idx.len();
        self.frames_served += s;
        self.frames_ran += report.ran;
        for (i, ses) in self.sessions.iter_mut().enumerate() {
            let st = ses.stats_mut();
            if run_idx.contains(&i) {
                st.runs += 1;
            } else {
                st.reuses += 1;
            }
        }
        report
    }

    /// Serves one supervised frame tick (see the module docs): fault
    /// injection per session, per-slice budget gating, health scoring,
    /// quarantine and re-admission probes. With every session's plan
    /// disabled this is bit-identical to [`Self::tick`] whenever the
    /// fleet fits the admission envelope. Do not interleave with
    /// [`Self::tick`] on a server that has quarantined sessions.
    pub fn tick_supervised(&mut self) -> SupervisedTickReport {
        let mut rep = SupervisedTickReport {
            base: TickReport {
                promoted: self.promote(),
                ..TickReport::default()
            },
            ..SupervisedTickReport::default()
        };
        let total = self.sessions.len();
        rep.base.sessions = total;
        self.ticks += 1;
        let now = self.ticks;
        if total == 0 {
            return rep;
        }
        let crop = self.model.config().crop_side;
        let mut budget = FrameBudget::new(self.cfg.deadline);
        budget.start_frame();
        let floor = DegradeAction::ReuseMask.rung();

        // Phase 0: quarantined slots serve a held-state stub (zero shared
        // compute — the stub path is display-only) or, when due, run a
        // re-admission probe outside the batch.
        let mut live: Vec<usize> = Vec::with_capacity(total);
        for i in 0..total {
            if !self.supervisor.is_quarantined(i) {
                live.push(i);
                continue;
            }
            rep.quarantined += 1;
            if self.supervisor.probe_due(i, now) {
                rep.probes += 1;
                let (healthy, charge) = self.run_probe(i, now, crop);
                if !budget.charge(charge) {
                    rep.base.overrun = true;
                }
                if healthy {
                    rep.readmitted += 1;
                    rep.base.ran += 1;
                    rep.base.rung_sessions[0] += 1;
                } else {
                    rep.base.reused += 1;
                    rep.base.degraded += 1;
                    rep.base.rung_sessions[floor] += 1;
                }
            } else {
                let ses = &mut self.sessions[i];
                ses.skip_frame();
                let st = ses.stats_mut();
                st.frames += 1;
                st.reuses += 1;
                st.degraded += 1;
                st.rung_frames[floor] += 1;
                rep.base.reused += 1;
                rep.base.degraded += 1;
                rep.base.rung_sessions[floor] += 1;
            }
        }
        let l = live.len();
        self.frames_served += total;
        if l == 0 {
            rep.base.spent_ms = budget.spent().ms();
            if rep.base.overrun {
                self.overruns += 1;
            }
            self.frames_ran += rep.base.ran;
            return rep;
        }

        // Phase 1: advance live sessions one frame, filtering each gaze
        // through the session's own seeded injector. The injector is
        // strictly session-local — a disabled plan draws no entropy.
        let mut frames = Vec::with_capacity(l);
        let mut obses = Vec::with_capacity(l);
        let mut faultses = Vec::with_capacity(l);
        for &i in &live {
            let ses = &mut self.sessions[i];
            let frame = ses.next_frame();
            let (obs, faults) = ses.injector_mut().observe(&frame.gaze);
            if faults.any() {
                rep.injected += 1;
            }
            frames.push(frame);
            obses.push(obs);
            faultses.push(faults);
        }

        // Phase 2: one batched predictor step across the live sessions.
        let dh = self.model.config().predictor_hidden;
        let mut gaze_rows = Vec::with_capacity(l * 2);
        let mut hidden_rows = Vec::with_capacity(l * dh);
        for &i in &live {
            let g = self.sessions[i].last_gaze();
            gaze_rows.extend_from_slice(&[g.x, g.y]);
            hidden_rows.extend_from_slice(self.sessions[i].hidden().as_slice());
        }
        let gazes = Tensor::from_vec(gaze_rows, &[l, 2]);
        let hidden = Tensor::from_vec(hidden_rows, &[l, dh]);
        let (next_hidden, deltas) = self.model.predict_batch(&gazes, &hidden);
        for (p, &i) in live.iter().enumerate() {
            self.sessions[i].set_hidden(Tensor::from_vec(
                next_hidden.as_slice()[p * dh..(p + 1) * dh].to_vec(),
                &[dh],
            ));
        }

        // Phase 3: per-session decision, gated against the session's own
        // slice of the envelope. Pricing is keyed to the *total* slot
        // count (stable under quarantine), so a neighbor faulting or
        // quarantining can never flip a healthy session's gate — the
        // isolation invariant. A latency spike charges extra against the
        // spiker's own slice (building its overrun streak) but never
        // changes the mask decision.
        let run_cost = self.shared_cost_per_run(total, None);
        let slice =
            Latency::from_ms(self.cfg.deadline.ms() * self.cfg.admission_fill / total as f64);
        let skip_costs: Vec<Latency> = live
            .iter()
            .map(|&i| self.shared_cost_skip(self.sessions[i].spec()))
            .collect();
        let uniform_costs: Vec<Latency> = live
            .iter()
            .map(|&i| self.shared_cost_uniform(self.sessions[i].spec()))
            .collect();
        let widen_costs: Vec<Latency> = live
            .iter()
            .map(|&i| {
                let bd = self.soc.degraded_solo_path(
                    self.cfg.backbone,
                    self.sessions[i].spec().scene.hw_dataset(),
                    f64::from(self.cfg.resilience.widen_factor),
                    &[],
                );
                bd.esnet.0 + bd.segmentation.0
            })
            .collect();
        let seg_costs: Vec<Latency> = live
            .iter()
            .map(|&i| {
                self.soc
                    .batched_solo_path(
                        self.cfg.backbone,
                        self.sessions[i].spec().scene.hw_dataset(),
                        total,
                    )
                    .segmentation
                    .0
            })
            .collect();
        let mut work = Vec::with_capacity(l);
        let mut rungs = Vec::with_capacity(l);
        let mut signals: Vec<Option<HealthSignal>> = vec![None; total];
        for (p, &i) in live.iter().enumerate() {
            let frame = &frames[p];
            let obs = &obses[p];
            let faults = &faultses[p];
            let ses = &mut self.sessions[i];
            let mut preview = uniform_subsample(&frame.image, crop, crop);
            ses.injector_mut().corrupt_preview(&mut preview, faults);

            let (action, w) = if obs.is_usable() {
                // Usable gaze: the plain-tick path, gated per slice.
                let suppressed = obs.sample.phase.is_suppressed();
                let gaze = if suppressed {
                    let d = &deltas.as_slice()[p * 2..(p + 1) * 2];
                    let g = ses.last_gaze();
                    GazePoint::new(g.x + d[0], g.y + d[1])
                } else {
                    ses.set_last_gaze(obs.sample.point);
                    obs.sample.point
                };
                let wants_run = ses.ssa_mut().step(&preview, gaze, suppressed).must_run()
                    || ses.last_mask().is_none();
                if !wants_run {
                    ses.ladder_mut().reset();
                    (DegradeAction::Nominal, Work::Reuse)
                } else if run_cost <= slice {
                    ses.ladder_mut().reset();
                    (DegradeAction::Nominal, Work::Run { gaze, widen: 1.0 })
                } else {
                    let action = ses.ladder_mut().decide(&self.cfg.resilience);
                    let w = match action {
                        DegradeAction::WidenCrop { factor } if widen_costs[p] <= slice => {
                            Work::Run {
                                gaze,
                                widen: factor,
                            }
                        }
                        DegradeAction::UniformFallback if uniform_costs[p] <= slice => {
                            Work::RunUniform
                        }
                        _ => Work::Reuse,
                    };
                    (action, w)
                }
            } else {
                // Tracker dark: walk the ladder anchored on the held
                // fixation, mirroring the streaming evaluator's rungs.
                let action = ses.ladder_mut().decide(&self.cfg.resilience);
                match action {
                    DegradeAction::HoldFixation { .. } => {
                        // Steer by the forecast from the held fixation.
                        let d = &deltas.as_slice()[p * 2..(p + 1) * 2];
                        let g = ses.last_gaze();
                        let gaze = GazePoint::new(g.x + d[0], g.y + d[1]);
                        let wants_run = ses.ssa_mut().step(&preview, gaze, false).must_run()
                            || ses.last_mask().is_none();
                        let w = if wants_run && run_cost <= slice {
                            Work::Run { gaze, widen: 1.0 }
                        } else {
                            Work::Reuse
                        };
                        (action, w)
                    }
                    DegradeAction::WidenCrop { factor } if widen_costs[p] <= slice => {
                        let g = ses.last_gaze();
                        (
                            action,
                            Work::Run {
                                gaze: g,
                                widen: factor,
                            },
                        )
                    }
                    DegradeAction::UniformFallback if uniform_costs[p] <= slice => {
                        (action, Work::RunUniform)
                    }
                    _ => (action, Work::Reuse),
                }
            };
            preview.recycle();

            let base = match &w {
                Work::Run { widen, .. } if *widen > 1.0 => widen_costs[p],
                Work::Run { .. } => run_cost,
                Work::RunUniform => uniform_costs[p],
                Work::Reuse => skip_costs[p],
            };
            let spike_extra = match (&w, faults.latency_spike) {
                (Work::Reuse, _) | (_, None) => Latency::ZERO,
                (_, Some(k)) => Latency::from_ms(seg_costs[p].ms() * (k - 1.0)),
            };
            let charge = base + spike_extra;
            if !budget.charge(charge) {
                rep.base.overrun = true;
            }

            let st = ses.stats_mut();
            st.frames += 1;
            st.rung_frames[action.rung()] += 1;
            rep.base.rung_sessions[action.rung()] += 1;
            if action.is_degraded() {
                st.degraded += 1;
                rep.base.degraded += 1;
            }
            signals[i] = Some(HealthSignal {
                tracker_usable: obs.is_usable(),
                slice_overrun: charge > slice,
                floor_dwell: ses.ladder().floor_dwell(),
            });
            rungs.push(action.rung());
            work.push(w);
        }
        rep.base.spent_ms = budget.spent().ms();
        if rep.base.overrun {
            self.overruns += 1;
        }

        // Phase 4: crops + batched inference for the running live
        // sessions, plus (when configured) the oracle round-trip score of
        // each served rung's sampling geometry.
        let score = self.cfg.resilience.score_round_trip;
        let mut run_pos = Vec::new();
        let mut crops = Vec::new();
        for (p, w) in work.iter().enumerate() {
            let ses = &self.sessions[live[p]];
            let map = match w {
                Work::Run { gaze, widen } => {
                    let sal = gaze_saliency(
                        crop,
                        crop,
                        (gaze.x, gaze.y),
                        SALIENCY_SIGMA_FRAC,
                        SALIENCY_FLOOR,
                    );
                    let map = IndexMap::from_saliency(&ses.sampler_spec(crop, *widen), &sal);
                    sal.recycle();
                    map
                }
                Work::RunUniform => IndexMap::uniform(&ses.sampler_spec(crop, 1.0)),
                Work::Reuse => continue,
            };
            if score {
                let n = ses.resolution();
                let gt = frames[p].ioi_mask.reshape(&[1, n, n]);
                let up = map
                    .upsample(&map.sample_nearest(&gt))
                    .into_reshaped(&[n, n])
                    .map(|v| if v > 0.5 { 1.0 } else { 0.0 });
                let b = binary_iou(&up, &frames[p].ioi_mask);
                self.rung_scores[rungs[p]].push(b, 0.0);
            }
            crops.push(map.sample_bilinear(&frames[p].image));
            run_pos.push(p);
        }
        for chunk_start in (0..crops.len()).step_by(self.cfg.batch) {
            let chunk_end = (chunk_start + self.cfg.batch).min(crops.len());
            let masks = self
                .model
                .infer_batch(&crops[chunk_start..chunk_end], self.cfg.precision);
            for (off, mask) in masks.into_iter().enumerate() {
                self.sessions[live[run_pos[chunk_start + off]]].set_last_mask(mask);
            }
        }
        for c in crops {
            c.recycle();
        }
        rep.base.ran += run_pos.len();
        rep.base.reused += l - run_pos.len();
        self.frames_ran += rep.base.ran;
        for p in 0..l {
            let st = self.sessions[live[p]].stats_mut();
            if run_pos.contains(&p) {
                st.runs += 1;
            } else {
                st.reuses += 1;
            }
        }

        // Phase 5: supervision. Streaks update from this tick's signals;
        // sessions crossing a threshold checkpoint, park, and drop out of
        // the batched dispatch starting next tick.
        for i in self.supervisor.tick(&signals) {
            if let Some(ses) = self.sessions.get_mut(i) {
                let cp = ses.checkpoint();
                ses.park();
                self.supervisor.quarantine(i, cp, now);
                rep.newly_quarantined += 1;
            }
        }
        rep
    }

    /// Runs one re-admission probe for quarantined slot `i`: restores a
    /// candidate from the held checkpoint, fast-forwards it through every
    /// frame the stub skipped (advancing frame cursor and fault injector
    /// in lockstep, so the replay is exactly what an uninterrupted session
    /// would have seen), then serves one frame. A usable gaze re-admits
    /// the candidate with a freshly segmented solo frame; a dark one parks
    /// it again with the advanced checkpoint and doubles the backoff.
    /// Returns whether the probe succeeded and its shared-compute charge.
    fn run_probe(&mut self, i: usize, now: usize, crop: usize) -> (bool, Latency) {
        let mut cand = match self.supervisor.checkpoint(i) {
            Some(cp) => Session::restore(cp),
            None => return (false, Latency::ZERO),
        };
        let target = match self.sessions.get(i) {
            Some(parked) => parked.cursor(),
            None => return (false, Latency::ZERO),
        };
        while cand.cursor() < target {
            let f = cand.next_frame();
            cand.injector_mut().observe(&f.gaze);
        }
        *cand.stats_mut() = *self.sessions[i].stats();
        let frame = cand.next_frame();
        let (obs, _faults) = cand.injector_mut().observe(&frame.gaze);
        if obs.is_usable() {
            // Healthy again: serve one unamortized solo frame (outside the
            // batch — probes never stack with healthy sessions' dispatch)
            // and re-admit.
            let bd = self
                .soc
                .probe_path(self.cfg.backbone, cand.spec().scene.hw_dataset());
            let charge = bd.esnet.0 + bd.segmentation.0;
            let gaze = obs.sample.point;
            cand.set_last_gaze(gaze);
            let sal = gaze_saliency(
                crop,
                crop,
                (gaze.x, gaze.y),
                SALIENCY_SIGMA_FRAC,
                SALIENCY_FLOOR,
            );
            let map = IndexMap::from_saliency(&cand.sampler_spec(crop, 1.0), &sal);
            sal.recycle();
            let c = map.sample_bilinear(&frame.image);
            let masks = self
                .model
                .infer_batch(std::slice::from_ref(&c), self.cfg.precision);
            c.recycle();
            if let Some(m) = masks.into_iter().next() {
                cand.set_last_mask(m);
            }
            cand.ladder_mut().reset();
            let st = cand.stats_mut();
            st.frames += 1;
            st.runs += 1;
            st.rung_frames[0] += 1;
            self.sessions[i] = cand;
            self.supervisor.record_probe(i, now, true, None);
            (true, charge)
        } else {
            // Still dark: persist the advanced injector/cursor so the
            // outage keeps draining across probes, and back off.
            let charge = self.shared_cost_skip(cand.spec());
            let st = cand.stats_mut();
            st.frames += 1;
            st.reuses += 1;
            st.degraded += 1;
            st.rung_frames[DegradeAction::ReuseMask.rung()] += 1;
            cand.park();
            let advanced = cand.checkpoint();
            self.sessions[i] = cand;
            self.supervisor.record_probe(i, now, false, Some(advanced));
            (false, charge)
        }
    }

    /// Aggregated per-session stats, cloned out for reporting.
    pub fn session_stats(&self) -> Vec<SessionStats> {
        self.sessions.iter().map(|s| *s.stats()).collect()
    }

    /// A digest of every session's displayed mask — equal digests mean
    /// bit-identical serving outcomes (used by the determinism tests).
    pub fn mask_digest(&self) -> Vec<Option<Vec<f32>>> {
        self.sessions
            .iter()
            .map(|s| s.last_mask().map(|m| m.as_slice().to_vec()))
            .collect()
    }

    /// Checkpoints every live session (diagnostics / external restore).
    pub fn checkpoints(&self) -> Vec<SessionCheckpoint> {
        self.sessions.iter().map(Session::checkpoint).collect()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("sessions", &self.sessions.len())
            .field("queued", &self.queue.len())
            .field("ticks", &self.ticks)
            .field("rejects", &self.rejects)
            .field("quarantined", &self.supervisor.quarantined_count())
            .field("quarantines", &self.supervisor.quarantines())
            .field("probes", &self.supervisor.probes())
            .field("readmissions", &self.supervisor.readmissions())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServeModelConfig;
    use solo_core::resilience::FaultPlan;
    use solo_tensor::seeded_rng;

    fn server(deadline_ms: f64, batch: usize) -> Server {
        let mut rng = seeded_rng(40);
        let model = match ServeModel::new(&mut rng, ServeModelConfig::paper_default()) {
            Ok(m) => Arc::new(m),
            Err(e) => panic!("{e}"),
        };
        let cfg = ServerConfig {
            deadline: Latency::from_ms(deadline_ms),
            batch,
            frames_per_video: 8,
            ..ServerConfig::paper_default()
        };
        match Server::new(model, cfg) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let mut cfg = ServerConfig::paper_default();
        cfg.admission_fill = 0.0;
        assert!(cfg.validate().is_err());
        cfg = ServerConfig::paper_default();
        cfg.batch = 0;
        assert!(cfg.validate().is_err());
        cfg = ServerConfig::paper_default();
        cfg.supervisor.overrun_limit = 0;
        assert!(cfg.validate().is_err(), "supervisor knobs validate too");
        assert!(ServerConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn admission_admits_queues_then_rejects() {
        // A deadline so tight a single session's run cost cannot fit.
        let mut srv = server(0.001, 4);
        srv.cfg.queue_cap = 2;
        assert_eq!(srv.admit(SessionSpec::nth(1, 0)), AdmitOutcome::Queued);
        assert_eq!(srv.admit(SessionSpec::nth(1, 1)), AdmitOutcome::Queued);
        assert_eq!(
            srv.admit(SessionSpec::nth(1, 2)),
            AdmitOutcome::Rejected {
                reason: RejectReason::QueueFull
            }
        );
        assert_eq!(srv.sessions().len(), 0);
        assert_eq!(srv.queued(), 2);
        assert_eq!(srv.rejects(), 1);
    }

    #[test]
    fn malformed_fault_plan_is_rejected_with_reason() {
        let mut srv = server(1000.0, 4);
        let mut plan = FaultPlan::dropout(1, 0.5);
        plan.blink_rate = 2.0;
        assert_eq!(
            srv.admit(SessionSpec::nth(1, 0).with_plan(plan)),
            AdmitOutcome::Rejected {
                reason: RejectReason::InvalidFaultPlan
            }
        );
        assert_eq!(srv.rejects(), 1);
        assert_eq!(srv.queued(), 0, "bad plans never enter the queue");
    }

    #[test]
    fn generous_deadline_admits_and_serves() {
        let mut srv = server(1000.0, 4);
        for i in 0..3 {
            assert_eq!(srv.admit(SessionSpec::nth(2, i)), AdmitOutcome::Admitted(i));
        }
        let r = srv.tick();
        assert_eq!(r.sessions, 3);
        // First tick: every session must run (no mask to reuse yet).
        assert_eq!(r.ran, 3);
        assert!(!r.overrun);
        assert_eq!(r.rung_sessions[0], 3, "no degradation with headroom");
        for s in srv.sessions() {
            assert!(s.last_mask().is_some());
        }
    }

    #[test]
    fn overload_degrades_later_sessions_first_and_recovers() {
        let mut srv = server(1000.0, 4);
        for i in 0..4 {
            assert_eq!(srv.admit(SessionSpec::nth(3, i)), AdmitOutcome::Admitted(i));
        }
        // Squeeze the live fleet: a deadline that fits roughly one run.
        let one_run = srv.shared_cost_per_run(4, None).ms();
        srv.cfg.deadline = Latency::from_ms(one_run * 1.5);
        let r = srv.tick();
        assert!(r.degraded > 0, "tight deadline must degrade someone");
        assert!(r.ran >= 1, "the first session in tick order keeps running");
        // Relax again: ladders reset, everyone recovers to nominal.
        srv.cfg.deadline = Latency::from_ms(1000.0);
        let mut saw_nominal_for_all = false;
        for _ in 0..4 {
            let r = srv.tick();
            if r.degraded == 0 {
                saw_nominal_for_all = true;
            }
        }
        assert!(saw_nominal_for_all, "recovery after overload clears");
    }

    #[test]
    fn batch_size_does_not_change_served_masks() {
        let mut a = server(1000.0, 1);
        let mut b = server(1000.0, 8);
        for i in 0..5 {
            a.admit(SessionSpec::nth(4, i));
            b.admit(SessionSpec::nth(4, i));
        }
        for _ in 0..6 {
            a.tick();
            b.tick();
        }
        assert_eq!(a.mask_digest(), b.mask_digest());
    }

    #[test]
    fn zero_fault_supervised_tick_matches_plain_tick() {
        let mut plain = server(1000.0, 4);
        let mut sup = server(1000.0, 4);
        for i in 0..4 {
            assert_eq!(
                plain.admit(SessionSpec::nth(5, i)),
                AdmitOutcome::Admitted(i)
            );
            assert_eq!(sup.admit(SessionSpec::nth(5, i)), AdmitOutcome::Admitted(i));
        }
        for t in 0..6 {
            let a = plain.tick();
            let b = sup.tick_supervised();
            assert_eq!(a, b.base, "tick {t}: reports must match exactly");
            assert_eq!(b.quarantined + b.probes + b.injected, 0);
        }
        assert_eq!(plain.mask_digest(), sup.mask_digest());
        assert_eq!(plain.session_stats(), sup.session_stats());
    }

    #[test]
    fn faulting_neighbor_cannot_perturb_healthy_masks() {
        let mut healthy = server(1000.0, 4);
        let mut chaotic = server(1000.0, 4);
        for i in 0..4 {
            let spec = SessionSpec::chaos_nth(6, i, 0.0);
            // Same fleet, but session 2 of the chaotic server faults hard.
            let spec_b = if i == 2 {
                spec.with_plan(FaultPlan::dropout(99, 1.0))
            } else {
                spec
            };
            assert_eq!(healthy.admit(spec), AdmitOutcome::Admitted(i));
            assert_eq!(chaotic.admit(spec_b), AdmitOutcome::Admitted(i));
        }
        let mut injected = 0;
        for _ in 0..30 {
            healthy.tick_supervised();
            injected += chaotic.tick_supervised().injected;
        }
        assert!(injected > 0, "the chaos plan must actually fire");
        let hd = healthy.mask_digest();
        let cd = chaotic.mask_digest();
        for i in [0usize, 1, 3] {
            assert_eq!(hd[i], cd[i], "healthy session {i} must be bit-identical");
        }
    }

    #[test]
    fn deep_outage_quarantines_probes_and_readmits() {
        let mut srv = server(1000.0, 4);
        let spec = SessionSpec::nth(7, 0).with_plan(FaultPlan::dropout(21, 1.0));
        assert_eq!(srv.admit(spec), AdmitOutcome::Admitted(0));
        let mut saw_stub = false;
        for _ in 0..600 {
            let r = srv.tick_supervised();
            saw_stub |= r.quarantined > 0 && r.probes == 0;
            if srv.supervisor().readmissions() >= 1 {
                break;
            }
        }
        assert!(
            srv.supervisor().quarantines() >= 1,
            "a 100%-dropout plan must quarantine: {srv:?}"
        );
        assert!(saw_stub, "quarantine must serve held-state stub ticks");
        assert!(
            srv.supervisor().probes() >= 1,
            "quarantine must be probed: {srv:?}"
        );
        assert!(
            srv.supervisor().readmissions() >= 1,
            "the outage must eventually clear and re-admit: {srv:?}"
        );
        assert!(!srv.supervisor().is_quarantined(0));
        assert!(!srv.sessions()[0].is_parked());
    }
}
