//! The multi-session server: a frame-tick scheduler multiplexing N
//! sessions over one shared model and one shared compute budget.
//!
//! Each tick the server advances every live session one frame, runs the
//! gaze predictor **once** for all sessions (the RNN time-step loop batched
//! across the session dimension), lets each session's SSA decide run vs
//! reuse, prices the tick's shared compute against a
//! [`FrameBudget`], and finally segments every running session's warped
//! crop through **one** cross-session batched inference pass.
//!
//! Two invariants the tests pin:
//!
//! * **Batch size never changes outputs.** `cfg.batch` only chunks the
//!   fused GEMM dispatches, which are bit-identical to per-session calls
//!   by construction; all *modeled pricing* is keyed to the live session
//!   count, never to `cfg.batch`.
//! * **Degradation is per-session.** Under overload, each session walks
//!   its own [`DegradeLadder`] — sessions early in the tick order keep
//!   running while later ones degrade, and a session's ladder resets as
//!   soon as the budget re-admits it.

use std::collections::VecDeque;
use std::sync::Arc;

use solo_core::resilience::{DegradeAction, FrameOutcome, ResilienceConfig, SoloError};
use solo_gaze::GazePoint;
use solo_hw::soc::{Backbone, CostBreakdown, SocModel};
use solo_hw::timing::FrameBudget;
use solo_hw::Latency;
use solo_sampler::{gaze_saliency, uniform_subsample, IndexMap};
use solo_tensor::Tensor;

use crate::model::{Precision, ServeModel};
use crate::session::{Session, SessionSpec, SessionStats};

/// Gaussian width (as a grid fraction) of the gaze saliency prior.
const SALIENCY_SIGMA_FRAC: f32 = 0.15;
/// Peripheral saliency pedestal.
const SALIENCY_FLOOR: f32 = 0.02;

/// Server knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Hard cap on concurrently live sessions.
    pub max_sessions: usize,
    /// Waiting-room capacity; arrivals beyond it are rejected.
    pub queue_cap: usize,
    /// GEMM fusion chunk: how many sessions' crops stack into one batched
    /// dispatch. Purely a scheduling knob — outputs are bit-identical at
    /// any value (see the module docs).
    pub batch: usize,
    /// Per-tick shared-compute deadline.
    pub deadline: Latency,
    /// Fraction of the deadline admission control may fill with modeled
    /// steady-state cost, in `(0, 1]`. The reserve absorbs SSA run-rate
    /// jitter before the per-tick ladder has to.
    pub admission_fill: f64,
    /// Numeric path of the segmentation head.
    pub precision: Precision,
    /// Frames per generated session video (sessions loop their trace).
    pub frames_per_video: usize,
    /// Ladder thresholds driving per-session overload degradation.
    pub resilience: ResilienceConfig,
    /// Cost-model backbone sessions are priced as.
    pub backbone: Backbone,
}

impl ServerConfig {
    /// Defaults: up to 64 sessions, a 16-deep queue, a 60 ms tick (the
    /// paper's SOLO latency envelope, matching
    /// [`ResilienceConfig::paper_default`]), f32 inference, 90 % admission
    /// fill.
    pub fn paper_default() -> Self {
        Self {
            max_sessions: 64,
            queue_cap: 16,
            batch: 8,
            deadline: Latency::from_ms(60.0),
            admission_fill: 0.9,
            precision: Precision::F32,
            frames_per_video: 64,
            resilience: ResilienceConfig::paper_default(),
            backbone: Backbone::Sf,
        }
    }

    /// Validates every knob's documented range.
    pub fn validate(&self) -> FrameOutcome<()> {
        if self.max_sessions == 0 || self.batch == 0 || self.frames_per_video == 0 {
            return Err(SoloError::InvalidConfig(
                "max_sessions, batch and frames_per_video must be nonzero",
            ));
        }
        if !(self.deadline > Latency::ZERO) {
            return Err(SoloError::InvalidConfig("deadline must be positive"));
        }
        if !(0.0 < self.admission_fill && self.admission_fill <= 1.0) {
            return Err(SoloError::InvalidConfig("admission_fill must be in (0, 1]"));
        }
        self.resilience.validate()
    }
}

/// Admission control's verdict on one arriving session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Live immediately; carries the session's index.
    Admitted(usize),
    /// Parked in the waiting room; promoted when capacity frees up.
    Queued,
    /// Waiting room full (or the session cap reached): turned away.
    Rejected,
}

/// What one tick did, session counts first.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TickReport {
    /// Live sessions this tick.
    pub sessions: usize,
    /// Sessions whose crop was segmented this tick.
    pub ran: usize,
    /// Sessions served from their previous mask (SSA reuse or degraded).
    pub reused: usize,
    /// Sessions decided at a below-nominal ladder rung.
    pub degraded: usize,
    /// Whether the modeled shared compute overran the tick deadline even
    /// after every session degraded as far as its ladder allows.
    pub overrun: bool,
    /// Modeled shared compute charged this tick, in ms.
    pub spent_ms: f64,
    /// Sessions promoted from the queue at the top of the tick.
    pub promoted: usize,
    /// Sessions at each ladder rung this tick (nominal first).
    pub rung_sessions: [usize; DegradeAction::RUNGS],
}

/// What a session is asked to do this tick, after SSA + ladder + budget.
enum Work {
    /// Segment the crop at this gaze with this widen area factor.
    Run { gaze: GazePoint, widen: f32 },
    /// Segment a uniform full-frame subsample.
    RunUniform,
    /// Present the previous mask.
    Reuse,
}

/// The multi-session server (see the module docs).
pub struct Server {
    model: Arc<ServeModel>,
    cfg: ServerConfig,
    soc: SocModel,
    sessions: Vec<Session>,
    queue: VecDeque<SessionSpec>,
    ticks: usize,
    overruns: usize,
    frames_served: usize,
    frames_ran: usize,
}

impl Server {
    /// Creates a server over a shared model.
    ///
    /// # Errors
    ///
    /// Returns [`SoloError::InvalidConfig`] when `cfg` fails validation.
    pub fn new(model: Arc<ServeModel>, cfg: ServerConfig) -> FrameOutcome<Self> {
        cfg.validate()?;
        Ok(Self {
            model,
            cfg,
            soc: SocModel::default(),
            sessions: Vec::new(),
            queue: VecDeque::new(),
            ticks: 0,
            overruns: 0,
            frames_served: 0,
            frames_ran: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Live sessions.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Sessions parked in the waiting room.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Ticks served so far.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Ticks whose shared compute overran the deadline after maximal
    /// degradation.
    pub fn overruns(&self) -> usize {
        self.overruns
    }

    /// Total session-frames served (sessions × ticks they were live).
    pub fn frames_served(&self) -> usize {
        self.frames_served
    }

    /// Total session-frames that ran segmentation.
    pub fn frames_ran(&self) -> usize {
        self.frames_ran
    }

    /// Modeled per-session shared compute (ESNet + segmentation) at a live
    /// session count of `s` — the marginal price admission charges and the
    /// per-run cost the tick budget charges. Batching amortizes the
    /// accelerator dispatch across sessions, so this falls as `s` grows.
    ///
    /// Priced worst-case across the live presets (the costliest dataset
    /// among the sessions), so admission never under-prices a mixed fleet.
    fn shared_cost_per_run(&self, s: usize, extra: Option<&SessionSpec>) -> Latency {
        let mut worst = Latency::ZERO;
        for ds in self
            .sessions
            .iter()
            .map(|ses| ses.spec().scene)
            .chain(extra.map(|e| e.scene))
        {
            let bd = self
                .soc
                .batched_solo_path(self.cfg.backbone, ds.hw_dataset(), s.max(1));
            let run = bd.esnet.0 + bd.segmentation.0;
            if run > worst {
                worst = run;
            }
        }
        worst
    }

    /// Shared cost of a reuse tick for one session: ESNet still runs (the
    /// SSA needs gaze + preview every frame), segmentation does not.
    fn shared_cost_skip(&self, spec: &SessionSpec) -> Latency {
        self.soc.skip_path(spec.scene.hw_dataset()).esnet.0
    }

    /// Shared cost of a uniform-fallback run for one session.
    fn shared_cost_uniform(&self, spec: &SessionSpec) -> Latency {
        let bd: CostBreakdown = self
            .soc
            .uniform_fallback_path(self.cfg.backbone, spec.scene.hw_dataset());
        bd.esnet.0 + bd.segmentation.0
    }

    /// Whether a fleet of `s` sessions (optionally including the arriving
    /// `extra`) fits the steady-state admission envelope: every session
    /// running every tick at the batched marginal price must fit inside
    /// `admission_fill · deadline`.
    fn fits(&self, s: usize, extra: Option<&SessionSpec>) -> bool {
        if s == 0 {
            return true;
        }
        let per_run = self.shared_cost_per_run(s, extra);
        let total_ms = per_run.ms() * s as f64;
        total_ms <= self.cfg.deadline.ms() * self.cfg.admission_fill
    }

    /// Admission control: admits the session if the post-admission fleet
    /// still fits the steady-state envelope, queues it if the waiting room
    /// has space, rejects it otherwise.
    pub fn admit(&mut self, spec: SessionSpec) -> Admission {
        let s = self.sessions.len();
        if s < self.cfg.max_sessions && self.fits(s + 1, Some(&spec)) {
            self.sessions.push(Session::new(
                spec,
                self.cfg.frames_per_video,
                self.model.config().predictor_hidden,
            ));
            Admission::Admitted(s)
        } else if self.queue.len() < self.cfg.queue_cap {
            self.queue.push_back(spec);
            Admission::Queued
        } else {
            Admission::Rejected
        }
    }

    /// Promotes queued sessions while the envelope admits them.
    fn promote(&mut self) -> usize {
        let mut promoted = 0;
        while let Some(spec) = self.queue.front().copied() {
            let s = self.sessions.len();
            if s >= self.cfg.max_sessions || !self.fits(s + 1, Some(&spec)) {
                break;
            }
            self.queue.pop_front();
            self.sessions.push(Session::new(
                spec,
                self.cfg.frames_per_video,
                self.model.config().predictor_hidden,
            ));
            promoted += 1;
        }
        promoted
    }

    /// Serves one frame tick to every live session (see the module docs
    /// for the phase order).
    pub fn tick(&mut self) -> TickReport {
        let mut report = TickReport {
            promoted: self.promote(),
            ..TickReport::default()
        };
        let s = self.sessions.len();
        report.sessions = s;
        self.ticks += 1;
        if s == 0 {
            return report;
        }
        let crop = self.model.config().crop_side;

        // Phase 1: advance every session one frame.
        let frames: Vec<_> = self.sessions.iter_mut().map(Session::next_frame).collect();

        // Phase 2: one batched predictor step across the session dimension.
        // Input is each session's last *measured* gaze; the output forecast
        // substitutes for the live sample while its phase is suppressed.
        let mut gaze_rows = Vec::with_capacity(s * 2);
        let mut hidden_rows = Vec::with_capacity(s * self.model.config().predictor_hidden);
        for ses in &self.sessions {
            let g = ses.last_gaze();
            gaze_rows.extend_from_slice(&[g.x, g.y]);
            hidden_rows.extend_from_slice(ses.hidden().as_slice());
        }
        let gazes = Tensor::from_vec(gaze_rows, &[s, 2]);
        let hidden = Tensor::from_vec(hidden_rows, &[s, self.model.config().predictor_hidden]);
        let (next_hidden, deltas) = self.model.predict_batch(&gazes, &hidden);
        let dh = self.model.config().predictor_hidden;
        for (i, ses) in self.sessions.iter_mut().enumerate() {
            ses.set_hidden(Tensor::from_vec(
                next_hidden.as_slice()[i * dh..(i + 1) * dh].to_vec(),
                &[dh],
            ));
        }

        // Phase 3: per-session SSA decision, then budget-gated degradation
        // in session order. All pricing is keyed to the live session count
        // `s` — never to `cfg.batch`. Costs are priced up front so the
        // per-session loop holds only the session borrow.
        let run_cost = self.shared_cost_per_run(s, None);
        let skip_costs: Vec<Latency> = self
            .sessions
            .iter()
            .map(|ses| self.shared_cost_skip(ses.spec()))
            .collect();
        let uniform_costs: Vec<Latency> = self
            .sessions
            .iter()
            .map(|ses| self.shared_cost_uniform(ses.spec()))
            .collect();
        let widen_costs: Vec<Latency> = self
            .sessions
            .iter()
            .map(|ses| {
                let bd = self.soc.degraded_solo_path(
                    self.cfg.backbone,
                    ses.spec().scene.hw_dataset(),
                    f64::from(self.cfg.resilience.widen_factor),
                    &[],
                );
                bd.esnet.0 + bd.segmentation.0
            })
            .collect();
        let mut budget = FrameBudget::new(self.cfg.deadline);
        budget.start_frame();
        let mut work = Vec::with_capacity(s);
        for (i, frame) in frames.iter().enumerate() {
            let ses = &mut self.sessions[i];
            let suppressed = frame.gaze.phase.is_suppressed();
            let gaze = if suppressed {
                // Saccadic suppression: steer the crop by the forecast
                // landing point instead of the mid-flight sample.
                let d = &deltas.as_slice()[i * 2..(i + 1) * 2];
                let g = ses.last_gaze();
                GazePoint::new(g.x + d[0], g.y + d[1])
            } else {
                ses.set_last_gaze(frame.gaze.point);
                frame.gaze.point
            };
            let preview = uniform_subsample(&frame.image, crop, crop);
            let wants_run = ses.ssa_mut().step(&preview, gaze, suppressed).must_run()
                || ses.last_mask().is_none();
            preview.recycle();

            let (action, w) = if !wants_run {
                ses.ladder_mut().reset();
                (DegradeAction::Nominal, Work::Reuse)
            } else if !budget.would_overrun(run_cost) {
                ses.ladder_mut().reset();
                (DegradeAction::Nominal, Work::Run { gaze, widen: 1.0 })
            } else {
                // Overload: this session walks its ladder. Hold presents
                // the last mask; widen retries a degraded (widened) run;
                // uniform retries the gaze-free fallback; reuse is the
                // floor. A rung whose retry still overruns falls through
                // to mask reuse for this tick.
                let action = ses.ladder_mut().decide(&self.cfg.resilience);
                let w = match action {
                    DegradeAction::WidenCrop { factor } => {
                        if !budget.would_overrun(widen_costs[i]) {
                            Work::Run {
                                gaze,
                                widen: factor,
                            }
                        } else {
                            Work::Reuse
                        }
                    }
                    DegradeAction::UniformFallback => {
                        if !budget.would_overrun(uniform_costs[i]) {
                            Work::RunUniform
                        } else {
                            Work::Reuse
                        }
                    }
                    _ => Work::Reuse,
                };
                (action, w)
            };

            let charge = match &w {
                Work::Run { widen, .. } if *widen > 1.0 => widen_costs[i],
                Work::Run { .. } => run_cost,
                Work::RunUniform => uniform_costs[i],
                Work::Reuse => skip_costs[i],
            };
            if !budget.charge(charge) {
                report.overrun = true;
            }

            let st = ses.stats_mut();
            st.frames += 1;
            st.rung_frames[action.rung()] += 1;
            report.rung_sessions[action.rung()] += 1;
            if action.is_degraded() {
                st.degraded += 1;
                report.degraded += 1;
            }
            work.push(w);
        }
        report.spent_ms = budget.spent().ms();
        if report.overrun {
            self.overruns += 1;
        }

        // Phase 4: build every running session's warped crop, then segment
        // them all through the batched head in `cfg.batch`-sized chunks.
        let mut run_idx = Vec::new();
        let mut crops = Vec::new();
        for (i, w) in work.iter().enumerate() {
            let ses = &self.sessions[i];
            let map = match w {
                Work::Run { gaze, widen } => {
                    let sal = gaze_saliency(
                        crop,
                        crop,
                        (gaze.x, gaze.y),
                        SALIENCY_SIGMA_FRAC,
                        SALIENCY_FLOOR,
                    );
                    let map = IndexMap::from_saliency(&ses.sampler_spec(crop, *widen), &sal);
                    sal.recycle();
                    map
                }
                Work::RunUniform => IndexMap::uniform(&ses.sampler_spec(crop, 1.0)),
                Work::Reuse => continue,
            };
            crops.push(map.sample_bilinear(&frames[i].image));
            run_idx.push(i);
        }
        for chunk_start in (0..crops.len()).step_by(self.cfg.batch) {
            let chunk_end = (chunk_start + self.cfg.batch).min(crops.len());
            let masks = self
                .model
                .infer_batch(&crops[chunk_start..chunk_end], self.cfg.precision);
            for (off, mask) in masks.into_iter().enumerate() {
                self.sessions[run_idx[chunk_start + off]].set_last_mask(mask);
            }
        }
        for c in crops {
            c.recycle();
        }
        report.ran = run_idx.len();
        report.reused = s - run_idx.len();
        self.frames_served += s;
        self.frames_ran += report.ran;
        for (i, ses) in self.sessions.iter_mut().enumerate() {
            let st = ses.stats_mut();
            if run_idx.contains(&i) {
                st.runs += 1;
            } else {
                st.reuses += 1;
            }
        }
        report
    }

    /// Aggregated per-session stats, cloned out for reporting.
    pub fn session_stats(&self) -> Vec<SessionStats> {
        self.sessions.iter().map(|s| *s.stats()).collect()
    }

    /// A digest of every session's displayed mask — equal digests mean
    /// bit-identical serving outcomes (used by the determinism tests).
    pub fn mask_digest(&self) -> Vec<Option<Vec<f32>>> {
        self.sessions
            .iter()
            .map(|s| s.last_mask().map(|m| m.as_slice().to_vec()))
            .collect()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("sessions", &self.sessions.len())
            .field("queued", &self.queue.len())
            .field("ticks", &self.ticks)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServeModelConfig;
    use solo_tensor::seeded_rng;

    fn server(deadline_ms: f64, batch: usize) -> Server {
        let mut rng = seeded_rng(40);
        let model = match ServeModel::new(&mut rng, ServeModelConfig::paper_default()) {
            Ok(m) => Arc::new(m),
            Err(e) => panic!("{e}"),
        };
        let cfg = ServerConfig {
            deadline: Latency::from_ms(deadline_ms),
            batch,
            frames_per_video: 8,
            ..ServerConfig::paper_default()
        };
        match Server::new(model, cfg) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let mut cfg = ServerConfig::paper_default();
        cfg.admission_fill = 0.0;
        assert!(cfg.validate().is_err());
        cfg = ServerConfig::paper_default();
        cfg.batch = 0;
        assert!(cfg.validate().is_err());
        assert!(ServerConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn admission_admits_queues_then_rejects() {
        // A deadline so tight a single session's run cost cannot fit.
        let mut srv = server(0.001, 4);
        srv.cfg.queue_cap = 2;
        assert_eq!(srv.admit(SessionSpec::nth(1, 0)), Admission::Queued);
        assert_eq!(srv.admit(SessionSpec::nth(1, 1)), Admission::Queued);
        assert_eq!(srv.admit(SessionSpec::nth(1, 2)), Admission::Rejected);
        assert_eq!(srv.sessions().len(), 0);
        assert_eq!(srv.queued(), 2);
    }

    #[test]
    fn generous_deadline_admits_and_serves() {
        let mut srv = server(1000.0, 4);
        for i in 0..3 {
            assert_eq!(srv.admit(SessionSpec::nth(2, i)), Admission::Admitted(i));
        }
        let r = srv.tick();
        assert_eq!(r.sessions, 3);
        // First tick: every session must run (no mask to reuse yet).
        assert_eq!(r.ran, 3);
        assert!(!r.overrun);
        assert_eq!(r.rung_sessions[0], 3, "no degradation with headroom");
        for s in srv.sessions() {
            assert!(s.last_mask().is_some());
        }
    }

    #[test]
    fn overload_degrades_later_sessions_first_and_recovers() {
        let mut srv = server(1000.0, 4);
        for i in 0..4 {
            assert_eq!(srv.admit(SessionSpec::nth(3, i)), Admission::Admitted(i));
        }
        // Squeeze the live fleet: a deadline that fits roughly one run.
        let one_run = srv.shared_cost_per_run(4, None).ms();
        srv.cfg.deadline = Latency::from_ms(one_run * 1.5);
        let r = srv.tick();
        assert!(r.degraded > 0, "tight deadline must degrade someone");
        assert!(r.ran >= 1, "the first session in tick order keeps running");
        // Relax again: ladders reset, everyone recovers to nominal.
        srv.cfg.deadline = Latency::from_ms(1000.0);
        let mut saw_nominal_for_all = false;
        for _ in 0..4 {
            let r = srv.tick();
            if r.degraded == 0 {
                saw_nominal_for_all = true;
            }
        }
        assert!(saw_nominal_for_all, "recovery after overload clears");
    }

    #[test]
    fn batch_size_does_not_change_served_masks() {
        let mut a = server(1000.0, 1);
        let mut b = server(1000.0, 8);
        for i in 0..5 {
            a.admit(SessionSpec::nth(4, i));
            b.admit(SessionSpec::nth(4, i));
        }
        for _ in 0..6 {
            a.tick();
            b.tick();
        }
        assert_eq!(a.mask_digest(), b.mask_digest());
    }
}
