//! The process-wide serving model: one set of weights, one set of packed
//! panels, any number of sessions.
//!
//! A [`ServeModel`] owns the segmentation head (a patch-tokenized two-layer
//! MLP over the warped crop) and the shared gaze-predictor RNN cell. Every
//! weight matrix is packed into blocked-GEMM panels through a
//! [`SharedPackedCache`] keyed on the model *version*: N sessions serving
//! concurrently fetch the same `Arc`'d panels, so a weight push (version
//! bump) repacks each matrix exactly once per process — never once per
//! session. Inference runs through the cross-session batched entry points
//! ([`matmul_packed_batched`] / [`qmatmul_packed_batched`]), which are
//! bit-identical to per-session calls by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use rand::Rng;
use solo_core::resilience::{FrameOutcome, SoloError};
use solo_nn::{RnnCell, RnnCellPacked};
use solo_tensor::{
    matmul_packed_batched, qmatmul_packed_batched, xavier_uniform, PackedMatrix, QPackedMatrix,
    SharedPackedCache, Tensor,
};

/// Numeric path the segmentation head runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// f32 blocked GEMM against the shared f32 panel twins.
    F32,
    /// int8 blocked GEMM against the shared int8 panel twins, with
    /// per-session activation scales.
    Int8,
}

impl Precision {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "i8",
        }
    }
}

/// Dimensions of the serving segmentation head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeModelConfig {
    /// Channels of the warped crop (3 for the RGB scenes).
    pub channels: usize,
    /// Side of the square warped crop the head segments.
    pub crop_side: usize,
    /// Side of the square patch one token covers; must divide `crop_side`.
    pub patch: usize,
    /// Hidden width of the per-token MLP.
    pub hidden: usize,
    /// Hidden width of the gaze-predictor RNN cell.
    pub predictor_hidden: usize,
}

impl ServeModelConfig {
    /// Defaults matched to the synthetic scenes: 96² frames previewed and
    /// cropped at 24², 4×4-pixel tokens, a 32-wide MLP and an 8-wide
    /// predictor.
    pub fn paper_default() -> Self {
        Self {
            channels: 3,
            crop_side: 24,
            patch: 4,
            hidden: 32,
            predictor_hidden: 8,
        }
    }

    /// Tokens per crop.
    pub fn tokens(&self) -> usize {
        let t = self.crop_side / self.patch;
        t * t
    }

    /// Features per token (`channels · patch²`).
    pub fn token_features(&self) -> usize {
        self.channels * self.patch * self.patch
    }

    /// Validates every knob's documented range.
    pub fn validate(&self) -> FrameOutcome<()> {
        if self.channels == 0
            || self.crop_side == 0
            || self.patch == 0
            || self.hidden == 0
            || self.predictor_hidden == 0
        {
            return Err(SoloError::InvalidConfig(
                "serve model dimensions must be nonzero",
            ));
        }
        if self.crop_side % self.patch != 0 {
            return Err(SoloError::InvalidConfig(
                "patch must divide the crop side exactly",
            ));
        }
        Ok(())
    }
}

/// The pushable parameters, swapped as one unit under the write lock so a
/// push is atomic: readers either see the old set or the new set, never a
/// torn mixture.
#[derive(Debug, Clone)]
struct HeadWeights {
    /// First MLP layer, `[hidden, channels·patch²]`.
    w1: Tensor,
    b1: Tensor,
    /// Second MLP layer, `[patch², hidden]` — per-pixel mask logits.
    w2: Tensor,
    b2: Tensor,
    /// Linear readout of the predictor hidden state to a gaze delta,
    /// `[2, predictor_hidden]`.
    readout: Tensor,
}

/// Why a staged weight push was refused. Nothing is mutated when any of
/// these fire: the model keeps serving the prior version in full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The push was staged against a version the model no longer serves
    /// (a competing push landed first). Transient: re-stage and retry.
    VersionFence {
        /// Version the push was built against.
        staged: u64,
        /// Version the model currently serves.
        current: u64,
    },
    /// The declared checksum does not match the staged tensors — a torn
    /// or corrupted transfer. Transient if re-staging re-reads the source.
    ChecksumMismatch {
        /// Checksum the push declared.
        declared: u64,
        /// Checksum recomputed over the staged tensors.
        computed: u64,
    },
    /// A staged tensor's shape disagrees with the model configuration.
    /// Permanent: retrying the same stage cannot succeed.
    ShapeMismatch(&'static str),
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::VersionFence { staged, current } => write!(
                f,
                "push staged against version {staged} but the model serves {current}"
            ),
            PushError::ChecksumMismatch { declared, computed } => write!(
                f,
                "push checksum mismatch: declared {declared:#018x}, computed {computed:#018x}"
            ),
            PushError::ShapeMismatch(what) => write!(f, "push shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for PushError {}

/// A staged weight push: full replacement tensors for the head plus the
/// integrity fence they were built against. Build one with
/// [`WeightPush::stage`], which seals the checksum; transport corruption
/// is then detectable at apply time.
#[derive(Debug, Clone)]
pub struct WeightPush {
    /// Version the replacement was trained/diffed against. The push only
    /// applies while the model still serves this version.
    pub base_version: u64,
    /// FNV-1a over the staged tensors' shapes and f32 bit patterns.
    pub checksum: u64,
    /// Replacement `[hidden, channels·patch²]` first layer.
    pub w1: Tensor,
    /// Replacement first-layer bias.
    pub b1: Tensor,
    /// Replacement `[patch², hidden]` second layer.
    pub w2: Tensor,
    /// Replacement second-layer bias.
    pub b2: Tensor,
    /// Replacement `[2, predictor_hidden]` gaze readout.
    pub readout: Tensor,
}

/// FNV-1a (64-bit) over each tensor's shape then element bit patterns, in
/// argument order. Deterministic across platforms — it reads the exact
/// f32 bits, never the float values.
fn fnv1a_tensors(tensors: &[&Tensor]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for t in tensors {
        for &d in t.shape().dims() {
            eat(d as u64);
        }
        for &v in t.as_slice() {
            eat(u64::from(v.to_bits()));
        }
    }
    h
}

impl WeightPush {
    /// Stages a push and seals its checksum over the given tensors.
    pub fn stage(
        base_version: u64,
        w1: Tensor,
        b1: Tensor,
        w2: Tensor,
        b2: Tensor,
        readout: Tensor,
    ) -> Self {
        let checksum = fnv1a_tensors(&[&w1, &b1, &w2, &b2, &readout]);
        Self {
            base_version,
            checksum,
            w1,
            b1,
            w2,
            b2,
            readout,
        }
    }

    /// Recomputes the checksum over the staged tensors as they are *now*.
    pub fn computed_checksum(&self) -> u64 {
        fnv1a_tensors(&[&self.w1, &self.b1, &self.w2, &self.b2, &self.readout])
    }
}

/// Retry/backoff policy for [`ServeModel::push_with_retry`]. Backoff is
/// accounted in abstract ticks (doubled per retry), not slept — the
/// serving loop is simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushPolicy {
    /// Attempts before giving up (≥ 1).
    pub max_attempts: usize,
    /// Backoff charged after the first failed attempt, doubling per retry.
    pub backoff_base_ticks: u64,
}

impl PushPolicy {
    /// Three attempts, starting at a 1-tick backoff.
    pub fn paper_default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_ticks: 1,
        }
    }
}

/// What a successful (possibly retried) push cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReceipt {
    /// Version now being served.
    pub version: u64,
    /// Attempts consumed (1 = first try landed).
    pub attempts: usize,
    /// Total backoff ticks charged across retries.
    pub backoff_ticks: u64,
}

/// The shared serving model (see the module docs).
#[derive(Debug)]
pub struct ServeModel {
    cfg: ServeModelConfig,
    /// Pushable parameters, swapped atomically by [`Self::push`].
    weights: RwLock<HeadWeights>,
    /// Gaze-predictor cell: `[gx, gy] → hidden`. Not covered by pushes
    /// (its weights live outside the push protocol), so it sits outside
    /// the lock.
    predictor: RnnCell,
    /// Parameter version; a bump (weight push) invalidates every shared
    /// panel cache at its next fetch. Only written while the weights
    /// write lock is held, so (weights, version) pairs read under the
    /// read lock are always consistent.
    version: AtomicU64,
    packed_w1: SharedPackedCache<PackedMatrix>,
    packed_w2: SharedPackedCache<PackedMatrix>,
    qpacked_w1: SharedPackedCache<QPackedMatrix>,
    qpacked_w2: SharedPackedCache<QPackedMatrix>,
    packed_cell: SharedPackedCache<RnnCellPacked>,
    packed_readout: SharedPackedCache<PackedMatrix>,
}

impl ServeModel {
    /// Creates a model with Xavier-uniform weights.
    ///
    /// # Errors
    ///
    /// Returns [`SoloError::InvalidConfig`] when `cfg` fails validation.
    pub fn new(rng: &mut impl Rng, cfg: ServeModelConfig) -> FrameOutcome<Self> {
        cfg.validate()?;
        let feat = cfg.token_features();
        let p2 = cfg.patch * cfg.patch;
        Ok(Self {
            cfg,
            weights: RwLock::new(HeadWeights {
                w1: xavier_uniform(rng, &[cfg.hidden, feat], feat, cfg.hidden),
                b1: Tensor::zeros(&[cfg.hidden]),
                w2: xavier_uniform(rng, &[p2, cfg.hidden], cfg.hidden, p2),
                b2: Tensor::zeros(&[p2]),
                readout: xavier_uniform(rng, &[2, cfg.predictor_hidden], cfg.predictor_hidden, 2),
            }),
            predictor: RnnCell::new(rng, 2, cfg.predictor_hidden),
            version: AtomicU64::new(0),
            packed_w1: SharedPackedCache::new(),
            packed_w2: SharedPackedCache::new(),
            qpacked_w1: SharedPackedCache::new(),
            qpacked_w2: SharedPackedCache::new(),
            packed_cell: SharedPackedCache::new(),
            packed_readout: SharedPackedCache::new(),
        })
    }

    /// The head dimensions.
    pub fn config(&self) -> &ServeModelConfig {
        &self.cfg
    }

    /// Current parameter version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Poison-tolerant read of the pushable weights: a panicked writer
    /// can only have poisoned the lock *after* its swap completed or
    /// before it started (the swap is a handful of moves), so the data is
    /// always a consistent version.
    fn read_weights(&self) -> RwLockReadGuard<'_, HeadWeights> {
        self.weights.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_weights(&self) -> RwLockWriteGuard<'_, HeadWeights> {
        self.weights.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Simulates a weight push: bumps the version so every shared panel
    /// cache repacks (once per process) at its next fetch. The weights
    /// themselves are unchanged, which keeps serving output comparable
    /// across pushes while still exercising the repack path. Takes the
    /// write lock so the bump fences against in-flight inference exactly
    /// like a real [`Self::push`].
    pub fn bump_version(&self) -> u64 {
        let _guard = self.write_weights();
        self.version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Applies a staged weight push atomically, or refuses it leaving the
    /// model untouched.
    ///
    /// The apply order is all-checks-then-swap under the write lock:
    /// version fence first (the push must target the version currently
    /// served), then shape validation against the model config, then the
    /// checksum recomputed over the staged tensors. Nothing mutates until
    /// every check has passed, so *any* failure is a complete rollback by
    /// construction — every session keeps serving the prior version and
    /// the shared panel caches stay valid for it. On success the swap and
    /// the version bump happen under the same lock; the bumped version
    /// then repacks each shared panel cache exactly once, process-wide.
    ///
    /// # Errors
    ///
    /// [`PushError::VersionFence`], [`PushError::ShapeMismatch`] or
    /// [`PushError::ChecksumMismatch`]; see each variant for whether a
    /// retry can help.
    pub fn push(&self, push: &WeightPush) -> Result<u64, PushError> {
        let mut guard = self.write_weights();
        let current = self.version.load(Ordering::Relaxed);
        if push.base_version != current {
            return Err(PushError::VersionFence {
                staged: push.base_version,
                current,
            });
        }
        let feat = self.cfg.token_features();
        let p2 = self.cfg.patch * self.cfg.patch;
        let shape_checks: [(&Tensor, &[usize], &'static str); 5] = [
            (&push.w1, &[self.cfg.hidden, feat], "w1"),
            (&push.b1, &[self.cfg.hidden], "b1"),
            (&push.w2, &[p2, self.cfg.hidden], "w2"),
            (&push.b2, &[p2], "b2"),
            (&push.readout, &[2, self.cfg.predictor_hidden], "readout"),
        ];
        for (t, want, name) in shape_checks {
            if t.shape().dims() != want {
                return Err(PushError::ShapeMismatch(name));
            }
        }
        let computed = push.computed_checksum();
        if computed != push.checksum {
            return Err(PushError::ChecksumMismatch {
                declared: push.checksum,
                computed,
            });
        }
        guard.w1 = push.w1.clone();
        guard.b1 = push.b1.clone();
        guard.w2 = push.w2.clone();
        guard.b2 = push.b2.clone();
        guard.readout = push.readout.clone();
        Ok(self.version.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Pushes with retry and exponential backoff: `stage` is called with
    /// the version the model currently serves and must return a push
    /// staged against it, so a [`PushError::VersionFence`] loss (or a
    /// transient transfer corruption) is healed by re-staging. Backoff
    /// doubles per retry and is accounted in the receipt, not slept.
    ///
    /// # Errors
    ///
    /// The last attempt's [`PushError`] once `policy.max_attempts` is
    /// exhausted (a [`PushError::ShapeMismatch`] fails fast — no retry
    /// can fix it).
    pub fn push_with_retry(
        &self,
        policy: PushPolicy,
        mut stage: impl FnMut(u64) -> WeightPush,
    ) -> Result<PushReceipt, PushError> {
        let attempts_allowed = policy.max_attempts.max(1);
        let mut backoff_ticks = 0u64;
        let mut next_backoff = policy.backoff_base_ticks;
        let mut last = PushError::ShapeMismatch("unreachable: no attempt ran");
        for attempt in 1..=attempts_allowed {
            let push = stage(self.version());
            match self.push(&push) {
                Ok(version) => {
                    return Ok(PushReceipt {
                        version,
                        attempts: attempt,
                        backoff_ticks,
                    });
                }
                Err(e @ PushError::ShapeMismatch(_)) => return Err(e),
                Err(e) => last = e,
            }
            if attempt < attempts_allowed {
                backoff_ticks += next_backoff;
                next_backoff = next_backoff.saturating_mul(2);
            }
        }
        Err(last)
    }

    /// Total number of pack-closure runs across every shared cache — the
    /// repack bill the whole process has paid. The staleness tests pin
    /// this to "one per matrix per version", independent of session count.
    pub fn pack_events(&self) -> u64 {
        self.packed_w1.pack_count()
            + self.packed_w2.pack_count()
            + self.qpacked_w1.pack_count()
            + self.qpacked_w2.pack_count()
            + self.packed_cell.pack_count()
            + self.packed_readout.pack_count()
    }

    /// Rearranges a `[C, d, d]` crop into the `[tokens, C·patch²]` matrix
    /// the head's first GEMM consumes. Pure data movement, identical for
    /// the batched and sequential paths.
    ///
    /// # Panics
    ///
    /// Panics if `crop` is not `[channels, crop_side, crop_side]`.
    pub fn tokenize(&self, crop: &Tensor) -> Tensor {
        let (c, d, p) = (self.cfg.channels, self.cfg.crop_side, self.cfg.patch);
        assert_eq!(
            crop.shape().dims(),
            &[c, d, d],
            "crop shape mismatch: {} vs [{c}, {d}, {d}]",
            crop.shape()
        );
        let tn = d / p;
        let src = crop.as_slice();
        let len = self.cfg.tokens() * c * p * p;
        let mut out = solo_tensor::exec::take_buf_at("serve.tokenize", len);
        for ty in 0..tn {
            for tx in 0..tn {
                let t = ty * tn + tx;
                let dst = &mut out[t * c * p * p..(t + 1) * c * p * p];
                for ch in 0..c {
                    for dy in 0..p {
                        let row = ch * d * d + (ty * p + dy) * d + tx * p;
                        dst[ch * p * p + dy * p..ch * p * p + dy * p + p]
                            .copy_from_slice(&src[row..row + p]);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[self.cfg.tokens(), c * p * p])
    }

    /// Reassembles per-token mask logits `[tokens, patch²]` into the
    /// `[d, d]` crop-space logit map.
    fn untokenize(&self, logits: &Tensor) -> Tensor {
        let (d, p) = (self.cfg.crop_side, self.cfg.patch);
        let tn = d / p;
        let src = logits.as_slice();
        let mut out = solo_tensor::exec::take_buf_at("serve.untokenize", d * d);
        for ty in 0..tn {
            for tx in 0..tn {
                let t = ty * tn + tx;
                for dy in 0..p {
                    let dst = (ty * p + dy) * d + tx * p;
                    out[dst..dst + p]
                        .copy_from_slice(&src[t * p * p + dy * p..t * p * p + dy * p + p]);
                }
            }
        }
        Tensor::from_vec(out, &[d, d])
    }

    /// Adds the layer bias and applies tanh in place, row-wise — the same
    /// elementwise chain whether the GEMM before it was batched or solo.
    fn bias_tanh(&self, mut x: Tensor, b: &Tensor) -> Tensor {
        let bs = b.as_slice();
        for row in x.as_mut_slice().chunks_exact_mut(bs.len()) {
            for (o, &bv) in row.iter_mut().zip(bs) {
                *o = (*o + bv).tanh();
            }
        }
        x
    }

    /// Adds the layer bias in place, row-wise.
    fn bias(&self, mut x: Tensor, b: &Tensor) -> Tensor {
        let bs = b.as_slice();
        for row in x.as_mut_slice().chunks_exact_mut(bs.len()) {
            for (o, &bv) in row.iter_mut().zip(bs) {
                *o += bv;
            }
        }
        x
    }

    /// Segments every crop in one pass of cross-session batched GEMMs:
    /// all crops' token matrices stack into a single fused dispatch per
    /// layer against the resident shared panels. Returns one `[d, d]`
    /// mask-logit map per crop.
    ///
    /// Bit-identical to calling it once per crop (the sequential serving
    /// baseline): the batched entry points pin per-member identity, and
    /// the bias/tanh stages are per-member elementwise. The int8 path
    /// quantizes each crop's activations with its own per-tensor scale,
    /// exactly as the solo call would.
    ///
    /// # Panics
    ///
    /// Panics if any crop is not `[channels, crop_side, crop_side]`.
    pub fn infer_batch(&self, crops: &[Tensor], precision: Precision) -> Vec<Tensor> {
        if crops.is_empty() {
            return Vec::new();
        }
        // Hold the read lock across both GEMMs so a concurrent push can
        // never tear the layer pair; the version is loaded under it, so
        // (weights, version) is a consistent snapshot.
        let w = self.read_weights();
        let v = self.version.load(Ordering::Relaxed);
        let tokens: Vec<Tensor> = crops.iter().map(|c| self.tokenize(c)).collect();
        let token_refs: Vec<&Tensor> = tokens.iter().collect();
        let hidden = match precision {
            Precision::F32 => {
                let p1 = self
                    .packed_w1
                    .get_or_pack(v, || PackedMatrix::pack_rhs_transposed(&w.w1));
                matmul_packed_batched(&token_refs, &p1)
            }
            Precision::Int8 => {
                let q1 = self
                    .qpacked_w1
                    .get_or_pack(v, || QPackedMatrix::pack_rhs_transposed(&w.w1));
                qmatmul_packed_batched(&token_refs, &q1)
            }
        };
        for t in tokens {
            t.recycle();
        }
        let act: Vec<Tensor> = hidden
            .into_iter()
            .map(|h| self.bias_tanh(h, &w.b1))
            .collect();
        let act_refs: Vec<&Tensor> = act.iter().collect();
        let logits = match precision {
            Precision::F32 => {
                let p2 = self
                    .packed_w2
                    .get_or_pack(v, || PackedMatrix::pack_rhs_transposed(&w.w2));
                matmul_packed_batched(&act_refs, &p2)
            }
            Precision::Int8 => {
                let q2 = self
                    .qpacked_w2
                    .get_or_pack(v, || QPackedMatrix::pack_rhs_transposed(&w.w2));
                qmatmul_packed_batched(&act_refs, &q2)
            }
        };
        for a in act {
            a.recycle();
        }
        logits
            .into_iter()
            .map(|l| {
                let l = self.bias(l, &w.b2);
                let mask = self.untokenize(&l);
                l.recycle();
                mask
            })
            .collect()
    }

    /// One predictor step for `S` sessions at once: `gazes` is `[S, 2]`
    /// (the tracker's current normalized gaze per session), `hidden` is
    /// `[S, predictor_hidden]`. Returns the next hidden states `[S,
    /// predictor_hidden]` and the predicted gaze deltas `[S, 2]`.
    ///
    /// Batches the RNN time-step loop across the *session* dimension —
    /// each session's sequence stays serial in time, but all sessions'
    /// step-`t` GEMMs fuse into one dispatch. Row-independent, so results
    /// are bit-identical at any batch size.
    pub fn predict_batch(&self, gazes: &Tensor, hidden: &Tensor) -> (Tensor, Tensor) {
        let w = self.read_weights();
        let v = self.version.load(Ordering::Relaxed);
        let cell = self.packed_cell.get_or_pack(v, || self.predictor.pack());
        let ro = self
            .packed_readout
            .get_or_pack(v, || PackedMatrix::pack_rhs_transposed(&w.readout));
        let next = self.predictor.step_batch(gazes, hidden, &cell);
        let delta = next.matmul_packed(&ro);
        (next, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solo_tensor::{exec, normal, seeded_rng};

    fn model(seed: u64) -> ServeModel {
        let mut rng = seeded_rng(seed);
        match ServeModel::new(&mut rng, ServeModelConfig::paper_default()) {
            Ok(m) => m,
            Err(e) => panic!("paper_default must validate: {e}"),
        }
    }

    #[test]
    fn config_validation_rejects_unaligned_patches() {
        let mut cfg = ServeModelConfig::paper_default();
        cfg.patch = 5; // 24 % 5 != 0
        assert!(cfg.validate().is_err());
        cfg.patch = 0;
        assert!(cfg.validate().is_err());
        assert!(ServeModelConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn tokenize_untokenize_round_trips_single_channel() {
        let mut cfg = ServeModelConfig::paper_default();
        cfg.channels = 1;
        let mut rng = seeded_rng(9);
        let m = match ServeModel::new(&mut rng, cfg) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        };
        let crop = normal(&mut rng, &[1, 24, 24], 0.0, 1.0);
        let toks = m.tokenize(&crop);
        assert_eq!(toks.shape().dims(), &[36, 16]);
        // With C = 1 a token row *is* a patch, so untokenize inverts it.
        let back = m.untokenize(&toks);
        assert_eq!(back.as_slice(), crop.as_slice());
    }

    #[test]
    fn batched_inference_is_bit_identical_to_sequential_per_crop() {
        let m = model(11);
        let mut rng = seeded_rng(12);
        let crops: Vec<Tensor> = (0..5)
            .map(|i| normal(&mut rng, &[3, 24, 24], 0.0, 0.3 + 0.4 * i as f32))
            .collect();
        for precision in [Precision::F32, Precision::Int8] {
            for width in [1usize, 8] {
                exec::with_threads(width, || {
                    let batched = m.infer_batch(&crops, precision);
                    for (i, crop) in crops.iter().enumerate() {
                        let solo = m.infer_batch(std::slice::from_ref(crop), precision);
                        assert_eq!(
                            batched[i].as_slice(),
                            solo[0].as_slice(),
                            "{} width {width} crop {i}",
                            precision.name()
                        );
                    }
                });
            }
        }
    }

    #[test]
    fn version_bump_repacks_each_matrix_once_for_all_sessions() {
        let m = std::sync::Arc::new(model(13));
        let mut rng = seeded_rng(14);
        let crops: Vec<Tensor> = (0..4)
            .map(|_| normal(&mut rng, &[3, 24, 24], 0.0, 1.0))
            .collect();
        let gazes = normal(&mut rng, &[4, 2], 0.5, 0.1);
        let hidden = Tensor::zeros(&[4, 8]);
        // Many "sessions" (calls) at version 0: w1+w2 pack once each per
        // precision, the predictor cell + readout once.
        for _ in 0..6 {
            m.infer_batch(&crops, Precision::F32);
            m.infer_batch(&crops, Precision::Int8);
            m.predict_batch(&gazes, &hidden);
        }
        assert_eq!(m.pack_events(), 6, "one pack per matrix, not per session");
        m.bump_version();
        for _ in 0..6 {
            m.infer_batch(&crops, Precision::F32);
            m.infer_batch(&crops, Precision::Int8);
            m.predict_batch(&gazes, &hidden);
        }
        assert_eq!(m.pack_events(), 12, "a weight push repacks exactly once");
    }

    fn staged_push(m: &ServeModel, seed: u64) -> WeightPush {
        let cfg = *m.config();
        let mut rng = seeded_rng(seed);
        let feat = cfg.token_features();
        let p2 = cfg.patch * cfg.patch;
        WeightPush::stage(
            m.version(),
            xavier_uniform(&mut rng, &[cfg.hidden, feat], feat, cfg.hidden),
            normal(&mut rng, &[cfg.hidden], 0.0, 0.01),
            xavier_uniform(&mut rng, &[p2, cfg.hidden], cfg.hidden, p2),
            normal(&mut rng, &[p2], 0.0, 0.01),
            xavier_uniform(
                &mut rng,
                &[2, cfg.predictor_hidden],
                cfg.predictor_hidden,
                2,
            ),
        )
    }

    #[test]
    fn push_applies_atomically_and_repacks_once() {
        let m = model(21);
        let mut rng = seeded_rng(22);
        let crops = [normal(&mut rng, &[3, 24, 24], 0.0, 1.0)];
        let before = m.infer_batch(&crops, Precision::F32);
        let push = staged_push(&m, 23);
        let v = match m.push(&push) {
            Ok(v) => v,
            Err(e) => panic!("valid push must apply: {e}"),
        };
        assert_eq!(v, 1);
        assert_eq!(m.version(), 1);
        let after = m.infer_batch(&crops, Precision::F32);
        assert_ne!(
            before[0].as_slice(),
            after[0].as_slice(),
            "new weights must change the served masks"
        );
        // A second fetch at the new version reuses the repacked panels.
        let packs = m.pack_events();
        m.infer_batch(&crops, Precision::F32);
        assert_eq!(m.pack_events(), packs, "push repacks once, not per call");
    }

    #[test]
    fn corrupted_push_rolls_back_completely() {
        let m = model(31);
        let mut rng = seeded_rng(32);
        let crops = [normal(&mut rng, &[3, 24, 24], 0.0, 1.0)];
        let before = m.infer_batch(&crops, Precision::F32);
        let packs = m.pack_events();

        // Corruption after sealing: flip one weight bit in transit.
        let mut torn = staged_push(&m, 33);
        let mut v = torn.w1.as_slice().to_vec();
        v[0] = f32::from_bits(v[0].to_bits() ^ 1);
        torn.w1 = Tensor::from_vec(v, &[m.config().hidden, m.config().token_features()]);
        match m.push(&torn) {
            Err(PushError::ChecksumMismatch { declared, computed }) => {
                assert_ne!(declared, computed);
            }
            other => panic!("torn push must be refused, got {other:?}"),
        }

        // Wrong-shaped readout.
        let mut bad = staged_push(&m, 34);
        bad.readout = Tensor::zeros(&[3, m.config().predictor_hidden]);
        bad.checksum = bad.computed_checksum();
        assert_eq!(m.push(&bad), Err(PushError::ShapeMismatch("readout")));

        // Stale fence.
        let stale = staged_push(&m, 35);
        m.bump_version();
        assert_eq!(
            m.push(&stale),
            Err(PushError::VersionFence {
                staged: 0,
                current: 1
            })
        );

        // All sessions keep serving the prior weights: output bits are as
        // before the failed pushes, and the only new pack events are the
        // fence bump's per-matrix repacks of the same bits (w1 + w2 on
        // this f32 path) — the refused pushes themselves packed nothing.
        let after = m.infer_batch(&crops, Precision::F32);
        assert_eq!(before[0].as_slice(), after[0].as_slice());
        assert_eq!(m.pack_events(), packs + 2, "only the bump's repacks");
    }

    #[test]
    fn push_with_retry_heals_a_lost_fence_race() {
        let m = model(41);
        let mut first = true;
        let receipt = m.push_with_retry(PushPolicy::paper_default(), |current| {
            // First attempt races a competing push and stages stale.
            let base = if first {
                first = false;
                current.wrapping_add(7)
            } else {
                current
            };
            let mut p = staged_push(&m, 42);
            p.base_version = base;
            p
        });
        match receipt {
            Ok(r) => {
                assert_eq!(r.attempts, 2, "fence loss then success");
                assert_eq!(r.backoff_ticks, 1, "one base backoff charged");
                assert_eq!(r.version, m.version());
            }
            Err(e) => panic!("retry must heal a fence race: {e}"),
        }

        // A permanently malformed push fails fast, no retries.
        let res = m.push_with_retry(PushPolicy::paper_default(), |current| {
            let mut p = staged_push(&m, 43);
            p.w2 = Tensor::zeros(&[1, 1]);
            p.checksum = p.computed_checksum();
            p.base_version = current;
            p
        });
        assert_eq!(res, Err(PushError::ShapeMismatch("w2")));

        // Exhausted attempts surface the last transient error.
        let res = m.push_with_retry(PushPolicy::paper_default(), |_| {
            let mut p = staged_push(&m, 44);
            p.checksum ^= 0xdead_beef;
            p
        });
        assert!(matches!(res, Err(PushError::ChecksumMismatch { .. })));
    }

    #[test]
    fn predictor_is_batch_size_invariant() {
        let m = model(15);
        let mut rng = seeded_rng(16);
        let gazes = normal(&mut rng, &[6, 2], 0.5, 0.2);
        let hidden = normal(&mut rng, &[6, 8], 0.0, 0.5);
        let (next, delta) = m.predict_batch(&gazes, &hidden);
        for i in 0..6 {
            let (n1, d1) = m.predict_batch(
                &gazes.row(i).reshape(&[1, 2]),
                &hidden.row(i).reshape(&[1, 8]),
            );
            assert_eq!(next.row(i).as_slice(), n1.as_slice(), "session {i}");
            assert_eq!(delta.row(i).as_slice(), d1.as_slice(), "session {i}");
        }
    }
}
