//! The process-wide serving model: one set of weights, one set of packed
//! panels, any number of sessions.
//!
//! A [`ServeModel`] owns the segmentation head (a patch-tokenized two-layer
//! MLP over the warped crop) and the shared gaze-predictor RNN cell. Every
//! weight matrix is packed into blocked-GEMM panels through a
//! [`SharedPackedCache`] keyed on the model *version*: N sessions serving
//! concurrently fetch the same `Arc`'d panels, so a weight push (version
//! bump) repacks each matrix exactly once per process — never once per
//! session. Inference runs through the cross-session batched entry points
//! ([`matmul_packed_batched`] / [`qmatmul_packed_batched`]), which are
//! bit-identical to per-session calls by construction.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;
use solo_core::resilience::{FrameOutcome, SoloError};
use solo_nn::{RnnCell, RnnCellPacked};
use solo_tensor::{
    matmul_packed_batched, qmatmul_packed_batched, xavier_uniform, PackedMatrix, QPackedMatrix,
    SharedPackedCache, Tensor,
};

/// Numeric path the segmentation head runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// f32 blocked GEMM against the shared f32 panel twins.
    F32,
    /// int8 blocked GEMM against the shared int8 panel twins, with
    /// per-session activation scales.
    Int8,
}

impl Precision {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "i8",
        }
    }
}

/// Dimensions of the serving segmentation head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeModelConfig {
    /// Channels of the warped crop (3 for the RGB scenes).
    pub channels: usize,
    /// Side of the square warped crop the head segments.
    pub crop_side: usize,
    /// Side of the square patch one token covers; must divide `crop_side`.
    pub patch: usize,
    /// Hidden width of the per-token MLP.
    pub hidden: usize,
    /// Hidden width of the gaze-predictor RNN cell.
    pub predictor_hidden: usize,
}

impl ServeModelConfig {
    /// Defaults matched to the synthetic scenes: 96² frames previewed and
    /// cropped at 24², 4×4-pixel tokens, a 32-wide MLP and an 8-wide
    /// predictor.
    pub fn paper_default() -> Self {
        Self {
            channels: 3,
            crop_side: 24,
            patch: 4,
            hidden: 32,
            predictor_hidden: 8,
        }
    }

    /// Tokens per crop.
    pub fn tokens(&self) -> usize {
        let t = self.crop_side / self.patch;
        t * t
    }

    /// Features per token (`channels · patch²`).
    pub fn token_features(&self) -> usize {
        self.channels * self.patch * self.patch
    }

    /// Validates every knob's documented range.
    pub fn validate(&self) -> FrameOutcome<()> {
        if self.channels == 0
            || self.crop_side == 0
            || self.patch == 0
            || self.hidden == 0
            || self.predictor_hidden == 0
        {
            return Err(SoloError::InvalidConfig(
                "serve model dimensions must be nonzero",
            ));
        }
        if self.crop_side % self.patch != 0 {
            return Err(SoloError::InvalidConfig(
                "patch must divide the crop side exactly",
            ));
        }
        Ok(())
    }
}

/// The shared serving model (see the module docs).
#[derive(Debug)]
pub struct ServeModel {
    cfg: ServeModelConfig,
    /// First MLP layer, `[hidden, channels·patch²]`.
    w1: Tensor,
    b1: Tensor,
    /// Second MLP layer, `[patch², hidden]` — per-pixel mask logits.
    w2: Tensor,
    b2: Tensor,
    /// Gaze-predictor cell: `[gx, gy] → hidden`.
    predictor: RnnCell,
    /// Linear readout of the predictor hidden state to a gaze delta,
    /// `[2, predictor_hidden]`.
    readout: Tensor,
    /// Parameter version; a bump (weight push) invalidates every shared
    /// panel cache at its next fetch.
    version: AtomicU64,
    packed_w1: SharedPackedCache<PackedMatrix>,
    packed_w2: SharedPackedCache<PackedMatrix>,
    qpacked_w1: SharedPackedCache<QPackedMatrix>,
    qpacked_w2: SharedPackedCache<QPackedMatrix>,
    packed_cell: SharedPackedCache<RnnCellPacked>,
    packed_readout: SharedPackedCache<PackedMatrix>,
}

impl ServeModel {
    /// Creates a model with Xavier-uniform weights.
    ///
    /// # Errors
    ///
    /// Returns [`SoloError::InvalidConfig`] when `cfg` fails validation.
    pub fn new(rng: &mut impl Rng, cfg: ServeModelConfig) -> FrameOutcome<Self> {
        cfg.validate()?;
        let feat = cfg.token_features();
        let p2 = cfg.patch * cfg.patch;
        Ok(Self {
            cfg,
            w1: xavier_uniform(rng, &[cfg.hidden, feat], feat, cfg.hidden),
            b1: Tensor::zeros(&[cfg.hidden]),
            w2: xavier_uniform(rng, &[p2, cfg.hidden], cfg.hidden, p2),
            b2: Tensor::zeros(&[p2]),
            predictor: RnnCell::new(rng, 2, cfg.predictor_hidden),
            readout: xavier_uniform(rng, &[2, cfg.predictor_hidden], cfg.predictor_hidden, 2),
            version: AtomicU64::new(0),
            packed_w1: SharedPackedCache::new(),
            packed_w2: SharedPackedCache::new(),
            qpacked_w1: SharedPackedCache::new(),
            qpacked_w2: SharedPackedCache::new(),
            packed_cell: SharedPackedCache::new(),
            packed_readout: SharedPackedCache::new(),
        })
    }

    /// The head dimensions.
    pub fn config(&self) -> &ServeModelConfig {
        &self.cfg
    }

    /// Current parameter version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Simulates a weight push: bumps the version so every shared panel
    /// cache repacks (once per process) at its next fetch. The weights
    /// themselves are unchanged, which keeps serving output comparable
    /// across pushes while still exercising the repack path.
    pub fn bump_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Total number of pack-closure runs across every shared cache — the
    /// repack bill the whole process has paid. The staleness tests pin
    /// this to "one per matrix per version", independent of session count.
    pub fn pack_events(&self) -> u64 {
        self.packed_w1.pack_count()
            + self.packed_w2.pack_count()
            + self.qpacked_w1.pack_count()
            + self.qpacked_w2.pack_count()
            + self.packed_cell.pack_count()
            + self.packed_readout.pack_count()
    }

    /// Rearranges a `[C, d, d]` crop into the `[tokens, C·patch²]` matrix
    /// the head's first GEMM consumes. Pure data movement, identical for
    /// the batched and sequential paths.
    ///
    /// # Panics
    ///
    /// Panics if `crop` is not `[channels, crop_side, crop_side]`.
    pub fn tokenize(&self, crop: &Tensor) -> Tensor {
        let (c, d, p) = (self.cfg.channels, self.cfg.crop_side, self.cfg.patch);
        assert_eq!(
            crop.shape().dims(),
            &[c, d, d],
            "crop shape mismatch: {} vs [{c}, {d}, {d}]",
            crop.shape()
        );
        let tn = d / p;
        let src = crop.as_slice();
        let len = self.cfg.tokens() * c * p * p;
        let mut out = solo_tensor::exec::take_buf_at("serve.tokenize", len);
        for ty in 0..tn {
            for tx in 0..tn {
                let t = ty * tn + tx;
                let dst = &mut out[t * c * p * p..(t + 1) * c * p * p];
                for ch in 0..c {
                    for dy in 0..p {
                        let row = ch * d * d + (ty * p + dy) * d + tx * p;
                        dst[ch * p * p + dy * p..ch * p * p + dy * p + p]
                            .copy_from_slice(&src[row..row + p]);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[self.cfg.tokens(), c * p * p])
    }

    /// Reassembles per-token mask logits `[tokens, patch²]` into the
    /// `[d, d]` crop-space logit map.
    fn untokenize(&self, logits: &Tensor) -> Tensor {
        let (d, p) = (self.cfg.crop_side, self.cfg.patch);
        let tn = d / p;
        let src = logits.as_slice();
        let mut out = solo_tensor::exec::take_buf_at("serve.untokenize", d * d);
        for ty in 0..tn {
            for tx in 0..tn {
                let t = ty * tn + tx;
                for dy in 0..p {
                    let dst = (ty * p + dy) * d + tx * p;
                    out[dst..dst + p]
                        .copy_from_slice(&src[t * p * p + dy * p..t * p * p + dy * p + p]);
                }
            }
        }
        Tensor::from_vec(out, &[d, d])
    }

    /// Adds the layer bias and applies tanh in place, row-wise — the same
    /// elementwise chain whether the GEMM before it was batched or solo.
    fn bias_tanh(&self, mut x: Tensor, b: &Tensor) -> Tensor {
        let bs = b.as_slice();
        for row in x.as_mut_slice().chunks_exact_mut(bs.len()) {
            for (o, &bv) in row.iter_mut().zip(bs) {
                *o = (*o + bv).tanh();
            }
        }
        x
    }

    /// Adds the layer bias in place, row-wise.
    fn bias(&self, mut x: Tensor, b: &Tensor) -> Tensor {
        let bs = b.as_slice();
        for row in x.as_mut_slice().chunks_exact_mut(bs.len()) {
            for (o, &bv) in row.iter_mut().zip(bs) {
                *o += bv;
            }
        }
        x
    }

    /// Segments every crop in one pass of cross-session batched GEMMs:
    /// all crops' token matrices stack into a single fused dispatch per
    /// layer against the resident shared panels. Returns one `[d, d]`
    /// mask-logit map per crop.
    ///
    /// Bit-identical to calling it once per crop (the sequential serving
    /// baseline): the batched entry points pin per-member identity, and
    /// the bias/tanh stages are per-member elementwise. The int8 path
    /// quantizes each crop's activations with its own per-tensor scale,
    /// exactly as the solo call would.
    ///
    /// # Panics
    ///
    /// Panics if any crop is not `[channels, crop_side, crop_side]`.
    pub fn infer_batch(&self, crops: &[Tensor], precision: Precision) -> Vec<Tensor> {
        if crops.is_empty() {
            return Vec::new();
        }
        let v = self.version();
        let tokens: Vec<Tensor> = crops.iter().map(|c| self.tokenize(c)).collect();
        let token_refs: Vec<&Tensor> = tokens.iter().collect();
        let hidden = match precision {
            Precision::F32 => {
                let p1 = self
                    .packed_w1
                    .get_or_pack(v, || PackedMatrix::pack_rhs_transposed(&self.w1));
                matmul_packed_batched(&token_refs, &p1)
            }
            Precision::Int8 => {
                let q1 = self
                    .qpacked_w1
                    .get_or_pack(v, || QPackedMatrix::pack_rhs_transposed(&self.w1));
                qmatmul_packed_batched(&token_refs, &q1)
            }
        };
        for t in tokens {
            t.recycle();
        }
        let act: Vec<Tensor> = hidden
            .into_iter()
            .map(|h| self.bias_tanh(h, &self.b1))
            .collect();
        let act_refs: Vec<&Tensor> = act.iter().collect();
        let logits = match precision {
            Precision::F32 => {
                let p2 = self
                    .packed_w2
                    .get_or_pack(v, || PackedMatrix::pack_rhs_transposed(&self.w2));
                matmul_packed_batched(&act_refs, &p2)
            }
            Precision::Int8 => {
                let q2 = self
                    .qpacked_w2
                    .get_or_pack(v, || QPackedMatrix::pack_rhs_transposed(&self.w2));
                qmatmul_packed_batched(&act_refs, &q2)
            }
        };
        for a in act {
            a.recycle();
        }
        logits
            .into_iter()
            .map(|l| {
                let l = self.bias(l, &self.b2);
                let mask = self.untokenize(&l);
                l.recycle();
                mask
            })
            .collect()
    }

    /// One predictor step for `S` sessions at once: `gazes` is `[S, 2]`
    /// (the tracker's current normalized gaze per session), `hidden` is
    /// `[S, predictor_hidden]`. Returns the next hidden states `[S,
    /// predictor_hidden]` and the predicted gaze deltas `[S, 2]`.
    ///
    /// Batches the RNN time-step loop across the *session* dimension —
    /// each session's sequence stays serial in time, but all sessions'
    /// step-`t` GEMMs fuse into one dispatch. Row-independent, so results
    /// are bit-identical at any batch size.
    pub fn predict_batch(&self, gazes: &Tensor, hidden: &Tensor) -> (Tensor, Tensor) {
        let v = self.version();
        let cell = self.packed_cell.get_or_pack(v, || self.predictor.pack());
        let ro = self
            .packed_readout
            .get_or_pack(v, || PackedMatrix::pack_rhs_transposed(&self.readout));
        let next = self.predictor.step_batch(gazes, hidden, &cell);
        let delta = next.matmul_packed(&ro);
        (next, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solo_tensor::{exec, normal, seeded_rng};

    fn model(seed: u64) -> ServeModel {
        let mut rng = seeded_rng(seed);
        match ServeModel::new(&mut rng, ServeModelConfig::paper_default()) {
            Ok(m) => m,
            Err(e) => panic!("paper_default must validate: {e}"),
        }
    }

    #[test]
    fn config_validation_rejects_unaligned_patches() {
        let mut cfg = ServeModelConfig::paper_default();
        cfg.patch = 5; // 24 % 5 != 0
        assert!(cfg.validate().is_err());
        cfg.patch = 0;
        assert!(cfg.validate().is_err());
        assert!(ServeModelConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn tokenize_untokenize_round_trips_single_channel() {
        let mut cfg = ServeModelConfig::paper_default();
        cfg.channels = 1;
        let mut rng = seeded_rng(9);
        let m = match ServeModel::new(&mut rng, cfg) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        };
        let crop = normal(&mut rng, &[1, 24, 24], 0.0, 1.0);
        let toks = m.tokenize(&crop);
        assert_eq!(toks.shape().dims(), &[36, 16]);
        // With C = 1 a token row *is* a patch, so untokenize inverts it.
        let back = m.untokenize(&toks);
        assert_eq!(back.as_slice(), crop.as_slice());
    }

    #[test]
    fn batched_inference_is_bit_identical_to_sequential_per_crop() {
        let m = model(11);
        let mut rng = seeded_rng(12);
        let crops: Vec<Tensor> = (0..5)
            .map(|i| normal(&mut rng, &[3, 24, 24], 0.0, 0.3 + 0.4 * i as f32))
            .collect();
        for precision in [Precision::F32, Precision::Int8] {
            for width in [1usize, 8] {
                exec::with_threads(width, || {
                    let batched = m.infer_batch(&crops, precision);
                    for (i, crop) in crops.iter().enumerate() {
                        let solo = m.infer_batch(std::slice::from_ref(crop), precision);
                        assert_eq!(
                            batched[i].as_slice(),
                            solo[0].as_slice(),
                            "{} width {width} crop {i}",
                            precision.name()
                        );
                    }
                });
            }
        }
    }

    #[test]
    fn version_bump_repacks_each_matrix_once_for_all_sessions() {
        let m = std::sync::Arc::new(model(13));
        let mut rng = seeded_rng(14);
        let crops: Vec<Tensor> = (0..4)
            .map(|_| normal(&mut rng, &[3, 24, 24], 0.0, 1.0))
            .collect();
        let gazes = normal(&mut rng, &[4, 2], 0.5, 0.1);
        let hidden = Tensor::zeros(&[4, 8]);
        // Many "sessions" (calls) at version 0: w1+w2 pack once each per
        // precision, the predictor cell + readout once.
        for _ in 0..6 {
            m.infer_batch(&crops, Precision::F32);
            m.infer_batch(&crops, Precision::Int8);
            m.predict_batch(&gazes, &hidden);
        }
        assert_eq!(m.pack_events(), 6, "one pack per matrix, not per session");
        m.bump_version();
        for _ in 0..6 {
            m.infer_batch(&crops, Precision::F32);
            m.infer_batch(&crops, Precision::Int8);
            m.predict_batch(&gazes, &hidden);
        }
        assert_eq!(m.pack_events(), 12, "a weight push repacks exactly once");
    }

    #[test]
    fn predictor_is_batch_size_invariant() {
        let m = model(15);
        let mut rng = seeded_rng(16);
        let gazes = normal(&mut rng, &[6, 2], 0.5, 0.2);
        let hidden = normal(&mut rng, &[6, 8], 0.0, 0.5);
        let (next, delta) = m.predict_batch(&gazes, &hidden);
        for i in 0..6 {
            let (n1, d1) = m.predict_batch(
                &gazes.row(i).reshape(&[1, 2]),
                &hidden.row(i).reshape(&[1, 8]),
            );
            assert_eq!(next.row(i).as_slice(), n1.as_slice(), "session {i}");
            assert_eq!(delta.row(i).as_slice(), d1.as_slice(), "session {i}");
        }
    }
}
