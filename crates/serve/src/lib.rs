//! # solo-serve
//!
//! Multi-session serving for the SOLO pipeline: N concurrent users, each
//! with their own gaze trace, scene, SSA state and degradation ladder,
//! multiplexed over **one** shared model and **one** per-tick compute
//! budget.
//!
//! The perf core is *cross-session batched inference*: every tick, all
//! running sessions' warped crops stack into fused GEMM dispatches against
//! panels that were packed **once per process** (a [`SharedPackedCache`]
//! keyed on the model version), and the gaze-predictor RNN's time-step
//! loop is batched across the session dimension. Both batched paths are
//! bit-identical to serving each session alone — the invariant the tier-1
//! proptests pin — so batching is purely a throughput lever:
//!
//! * [`ServeModel`] — shared weights, version-keyed shared panel caches
//!   (f32 and int8 twins), the batched segmentation head and predictor;
//! * [`Session`] — per-user trace, SSA, ladder and predictor hidden row;
//! * [`Server`] — admission control priced by the batched marginal cost,
//!   the frame-tick scheduler, and per-session overload degradation.
//!
//! The resilience layer rides on top: each session carries its own seeded
//! fault plan, a [`Supervisor`] scores per-session health during
//! [`Server::tick_supervised`], and chronically unhealthy sessions
//! quarantine into a held-state stub until an exponential-backoff probe
//! re-admits them from a [`SessionCheckpoint`] — all without perturbing a
//! single bit of a healthy batch-mate's output.
//!
//! ```
//! use solo_serve::{AdmitOutcome, ServeModel, ServeModelConfig, Server, ServerConfig, SessionSpec};
//! use solo_tensor::seeded_rng;
//! use std::sync::Arc;
//!
//! let mut rng = seeded_rng(0);
//! let model = Arc::new(ServeModel::new(&mut rng, ServeModelConfig::paper_default()).unwrap());
//! let mut server = Server::new(model, ServerConfig::paper_default()).unwrap();
//! assert_eq!(server.admit(SessionSpec::nth(0, 0)), AdmitOutcome::Admitted(0));
//! let report = server.tick_supervised();
//! assert_eq!(report.base.sessions, 1);
//! assert_eq!(report.base.ran, 1); // first frame always segments
//! ```
//!
//! [`SharedPackedCache`]: solo_tensor::SharedPackedCache

mod model;
mod server;
mod session;
mod supervisor;

pub use model::{
    Precision, PushError, PushPolicy, PushReceipt, ServeModel, ServeModelConfig, WeightPush,
};
pub use server::{
    AdmitOutcome, RejectReason, Server, ServerConfig, SupervisedTickReport, TickReport,
};
pub use session::{ScenePreset, Session, SessionCheckpoint, SessionSpec, SessionStats};
pub use supervisor::{HealthSignal, Supervisor, SupervisorConfig};
