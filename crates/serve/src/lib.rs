//! # solo-serve
//!
//! Multi-session serving for the SOLO pipeline: N concurrent users, each
//! with their own gaze trace, scene, SSA state and degradation ladder,
//! multiplexed over **one** shared model and **one** per-tick compute
//! budget.
//!
//! The perf core is *cross-session batched inference*: every tick, all
//! running sessions' warped crops stack into fused GEMM dispatches against
//! panels that were packed **once per process** (a [`SharedPackedCache`]
//! keyed on the model version), and the gaze-predictor RNN's time-step
//! loop is batched across the session dimension. Both batched paths are
//! bit-identical to serving each session alone — the invariant the tier-1
//! proptests pin — so batching is purely a throughput lever:
//!
//! * [`ServeModel`] — shared weights, version-keyed shared panel caches
//!   (f32 and int8 twins), the batched segmentation head and predictor;
//! * [`Session`] — per-user trace, SSA, ladder and predictor hidden row;
//! * [`Server`] — admission control priced by the batched marginal cost,
//!   the frame-tick scheduler, and per-session overload degradation.
//!
//! ```
//! use solo_serve::{Admission, ServeModel, ServeModelConfig, Server, ServerConfig, SessionSpec};
//! use solo_tensor::seeded_rng;
//! use std::sync::Arc;
//!
//! let mut rng = seeded_rng(0);
//! let model = Arc::new(ServeModel::new(&mut rng, ServeModelConfig::paper_default()).unwrap());
//! let mut server = Server::new(model, ServerConfig::paper_default()).unwrap();
//! assert_eq!(server.admit(SessionSpec::nth(0, 0)), Admission::Admitted(0));
//! let report = server.tick();
//! assert_eq!(report.sessions, 1);
//! assert_eq!(report.ran, 1); // first frame always segments
//! ```
//!
//! [`SharedPackedCache`]: solo_tensor::SharedPackedCache

mod model;
mod server;
mod session;

pub use model::{Precision, ServeModel, ServeModelConfig};
pub use server::{Admission, Server, ServerConfig, TickReport};
pub use session::{ScenePreset, Session, SessionSpec, SessionStats};
