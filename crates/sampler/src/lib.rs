//! # solo-sampler
//!
//! The saliency-guided downsampling machinery at the heart of SOLO
//! (Section 3.1 of the paper, after Recasens et al. "learning to zoom" and
//! Jin et al. "learning to downsample").
//!
//! A downsampled image `I_f^s ∈ R^{h×w}` is produced from the full-resolution
//! `I_f ∈ R^{H×W}` through two mapping functions (Eq. 1–3):
//!
//! ```text
//! I_f^s[i, j] = I_f[g1(i, j), g2(i, j)]
//!
//!            Σ_{i',j'} S(i',j') · k_σ((i/h, j/w), (i'/H, j'/W)) · i'
//! g1(i, j) = ────────────────────────────────────────────────────────
//!            Σ_{i',j'} S(i',j') · k_σ((i/h, j/w), (i'/H, j'/W))
//! ```
//!
//! and symmetrically for `g2` with `j'`. High saliency attracts sample
//! coordinates, so the region around the instance of interest is sampled
//! densely while the periphery is compressed — the paper's foveation.
//!
//! The crate provides:
//!
//! * [`SamplerSpec`] / [`IndexMap`] — the mapping `H(i,j) = [g1, g2]` that
//!   the SOLO accelerator's sensor controller ships to the SBS-enabled
//!   camera, plus sampling and the reverse (upsampling) interpolation;
//! * [`gaze_saliency`] — the gaze-centered Gaussian saliency prior;
//! * [`content_saliency`] — the gaze-free content saliency used by the LTD
//!   (learn-to-downsample) baseline;
//! * [`average_downsample`] — the AD baseline.
//!
//! ```
//! use solo_sampler::{gaze_saliency, IndexMap, SamplerSpec};
//! use solo_tensor::Tensor;
//!
//! let spec = SamplerSpec::new(64, 64, 16, 16, 8.0);
//! // Gaze at the image center, saliency grid 16×16.
//! let s = gaze_saliency(16, 16, (0.5, 0.5), 0.15, 0.05);
//! let map = IndexMap::from_saliency(&spec, &s);
//! let img = Tensor::ones(&[3, 64, 64]);
//! let small = map.sample_bilinear(&img);
//! assert_eq!(small.shape().dims(), &[3, 16, 16]);
//! ```

#![warn(missing_docs)]

mod baselines;
mod index_map;
mod saliency;

pub use baselines::{average_downsample, uniform_subsample};
pub use index_map::{IndexMap, SamplerSpec};
pub use saliency::{content_saliency, gaze_saliency, mix_saliency};
