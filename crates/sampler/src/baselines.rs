//! The downsampling baselines SOLO is compared against (Section 5).

use solo_tensor::{avg_pool2d, bilinear_resize, Tensor};

/// *Average Downsampling (AD)*: plain average-pooling resize of the whole
/// frame, the paper's first accuracy baseline. The IOI shrinks with
/// everything else, which is exactly why AD loses.
///
/// Implemented as average pooling when the ratio is integral, bilinear
/// resize otherwise.
///
/// # Panics
///
/// Panics if `img` is not rank-3 or the output is larger than the input.
pub fn average_downsample(img: &Tensor, out_h: usize, out_w: usize) -> Tensor {
    assert_eq!(
        img.shape().ndim(),
        3,
        "average_downsample input must be [C,H,W]"
    );
    let (h, w) = (img.shape().dim(1), img.shape().dim(2));
    assert!(out_h <= h && out_w <= w, "output must not exceed input");
    if h % out_h == 0 && w % out_w == 0 && h / out_h == w / out_w {
        avg_pool2d(img, h / out_h)
    } else {
        bilinear_resize(img, out_h, out_w)
    }
}

/// Even subsampling: picks every k-th pixel (nearest sample at uniform grid
/// positions). This is how the camera produces the preview frame `I_f^d`
/// that feeds ESNet and the SSA view-change test — cheaper on the sensor
/// than averaging because no pixel aggregation is needed.
///
/// # Panics
///
/// Panics if `img` is not rank-3 or the output is larger than the input.
pub fn uniform_subsample(img: &Tensor, out_h: usize, out_w: usize) -> Tensor {
    assert_eq!(
        img.shape().ndim(),
        3,
        "uniform_subsample input must be [C,H,W]"
    );
    let (c, h, w) = (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2));
    assert!(out_h <= h && out_w <= w, "output must not exceed input");
    let src = img.as_slice();
    let mut out = vec![0.0f32; c * out_h * out_w];
    for oi in 0..out_h {
        let y = ((oi as f32 + 0.5) / out_h as f32 * h as f32 - 0.5)
            .round()
            .clamp(0.0, (h - 1) as f32) as usize;
        for oj in 0..out_w {
            let x = ((oj as f32 + 0.5) / out_w as f32 * w as f32 - 0.5)
                .round()
                .clamp(0.0, (w - 1) as f32) as usize;
            for ch in 0..c {
                out[(ch * out_h + oi) * out_w + oj] = src[(ch * h + y) * w + x];
            }
        }
    }
    Tensor::from_vec(out, &[c, out_h, out_w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_downsample_integral_ratio_uses_pooling() {
        let img = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 4, 4]);
        let out = average_downsample(&img, 2, 2);
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        // Top-left 2×2 block mean: (0+1+4+5)/4.
        assert_eq!(out.at(&[0, 0, 0]), 2.5);
    }

    #[test]
    fn average_downsample_non_integral_falls_back_to_bilinear() {
        let img = Tensor::ones(&[2, 7, 5]);
        let out = average_downsample(&img, 3, 2);
        assert_eq!(out.shape().dims(), &[2, 3, 2]);
        assert!(out.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-5));
    }

    #[test]
    fn uniform_subsample_picks_exact_pixels() {
        let img = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 4, 4]);
        let out = uniform_subsample(&img, 2, 2);
        // Samples at rows/cols {0.5, 2.5} → rounded to {0 or 1, 2 or 3}:
        // every output value must be one of the source values.
        for &v in out.as_slice() {
            assert!(img.as_slice().contains(&v));
        }
    }

    #[test]
    fn uniform_subsample_identity_at_same_size() {
        let img = Tensor::arange(12).reshape(&[1, 3, 4]);
        let out = uniform_subsample(&img, 3, 4);
        assert_eq!(out.as_slice(), img.as_slice());
    }

    #[test]
    fn subsample_loses_detail_that_averaging_keeps() {
        // A checkerboard: averaging preserves the mean (0.5); subsampling
        // collapses to whichever phase it lands on. This is the fidelity /
        // sensor-cost trade the paper exploits for I_f^d.
        let mut img = Tensor::zeros(&[1, 8, 8]);
        for y in 0..8 {
            for x in 0..8 {
                if (x + y) % 2 == 0 {
                    img.set(&[0, y, x], 1.0);
                }
            }
        }
        let avg = average_downsample(&img, 4, 4);
        let sub = uniform_subsample(&img, 4, 4);
        assert!((avg.mean() - 0.5).abs() < 1e-5);
        assert!(sub.mean() == 0.0 || sub.mean() == 1.0);
    }
}
