//! Saliency score map construction.

use solo_tensor::Tensor;

/// A gaze-centered Gaussian saliency prior on a `[gh, gw]` grid.
///
/// `gaze` is the normalized `(x, y)` gaze location in `[0, 1]²` (x = column
/// fraction, matching the gaze-tracker convention); `sigma_frac` is the
/// Gaussian width as a fraction of the grid extent; `floor` is a uniform
/// pedestal ensuring peripheral regions keep nonzero sampling density (the
/// paper's sampler compresses but never discards the periphery).
///
/// # Panics
///
/// Panics if dimensions are zero, `sigma_frac <= 0`, or `floor < 0`.
pub fn gaze_saliency(
    gh: usize,
    gw: usize,
    gaze: (f32, f32),
    sigma_frac: f32,
    floor: f32,
) -> Tensor {
    assert!(gh > 0 && gw > 0, "grid dimensions must be nonzero");
    assert!(sigma_frac > 0.0, "sigma_frac must be positive");
    assert!(floor >= 0.0, "floor must be non-negative");
    let (gx, gy) = gaze;
    let mut out = vec![0.0f32; gh * gw];
    for i in 0..gh {
        let y = (i as f32 + 0.5) / gh as f32;
        for j in 0..gw {
            let x = (j as f32 + 0.5) / gw as f32;
            let d2 = (x - gx) * (x - gx) + (y - gy) * (y - gy);
            out[i * gw + j] = floor + (-d2 / (2.0 * sigma_frac * sigma_frac)).exp();
        }
    }
    Tensor::from_vec(out, &[gh, gw])
}

/// Content saliency from local gradient magnitude — the gaze-free signal the
/// LTD (learn-to-downsample) baseline uses.
///
/// Computes the mean absolute Sobel response over channels of a `[C, h, w]`
/// image, normalized to peak 1, plus a small pedestal.
///
/// # Panics
///
/// Panics if `img` is not rank-3 or smaller than 3×3.
pub fn content_saliency(img: &Tensor) -> Tensor {
    assert_eq!(
        img.shape().ndim(),
        3,
        "content_saliency input must be [C,h,w]"
    );
    let (c, h, w) = (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2));
    assert!(h >= 3 && w >= 3, "image must be at least 3×3");
    let src = img.as_slice();
    let mut out = vec![0.0f32; h * w];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mut mag = 0.0f32;
            for ch in 0..c {
                let at = |yy: usize, xx: usize| src[(ch * h + yy) * w + xx];
                let gx = (at(y - 1, x + 1) + 2.0 * at(y, x + 1) + at(y + 1, x + 1))
                    - (at(y - 1, x - 1) + 2.0 * at(y, x - 1) + at(y + 1, x - 1));
                let gy = (at(y + 1, x - 1) + 2.0 * at(y + 1, x) + at(y + 1, x + 1))
                    - (at(y - 1, x - 1) + 2.0 * at(y - 1, x) + at(y - 1, x + 1));
                mag += gx.abs() + gy.abs();
            }
            out[y * w + x] = mag / c as f32;
        }
    }
    let peak = out.iter().copied().fold(0.0f32, f32::max).max(1e-6);
    for v in &mut out {
        *v = *v / peak + 0.05;
    }
    Tensor::from_vec(out, &[h, w])
}

/// Blends two saliency maps of identical shape: `a·w + b·(1−w)`.
///
/// SOLO's ESNet effectively combines the gaze prior with content saliency of
/// the preview frame `I_f^d`; this is the fusion primitive.
///
/// # Panics
///
/// Panics if shapes differ or `w` is outside `[0, 1]`.
pub fn mix_saliency(a: &Tensor, b: &Tensor, w: f32) -> Tensor {
    assert!((0.0..=1.0).contains(&w), "mix weight must be in [0,1]");
    a.zip(b, |av, bv| av * w + bv * (1.0 - w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaze_saliency_peaks_at_gaze() {
        let s = gaze_saliency(16, 16, (0.25, 0.75), 0.1, 0.0);
        let peak = s.argmax();
        let (i, j) = (peak / 16, peak % 16);
        // gaze (x=0.25, y=0.75) → row ~12, col ~4
        assert!((i as i32 - 12).abs() <= 1, "row {i}");
        assert!((j as i32 - 4).abs() <= 1, "col {j}");
    }

    #[test]
    fn floor_keeps_periphery_nonzero() {
        let s = gaze_saliency(8, 8, (0.0, 0.0), 0.05, 0.1);
        assert!(s.min() >= 0.1);
    }

    #[test]
    fn content_saliency_highlights_edges() {
        // Vertical step edge in the middle.
        let mut img = Tensor::zeros(&[1, 8, 8]);
        for y in 0..8 {
            for x in 4..8 {
                img.set(&[0, y, x], 1.0);
            }
        }
        let s = content_saliency(&img);
        // Saliency at the edge column exceeds flat regions.
        assert!(s.at(&[4, 4]) > s.at(&[4, 1]) + 0.5);
    }

    #[test]
    fn mix_is_convex_combination() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 0.0);
        let m = mix_saliency(&a, &b, 0.25);
        assert!(m.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "sigma_frac")]
    fn rejects_zero_sigma() {
        gaze_saliency(4, 4, (0.5, 0.5), 0.0, 0.0);
    }
}
