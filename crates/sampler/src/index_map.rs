//! The index map `H(i,j) = [g1(i,j), g2(i,j)]` (Eq. 2/3) and its samplers.

use solo_tensor::{exec, Tensor};

/// Geometry and kernel width of a saliency-guided sampling operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerSpec {
    /// Source (full-resolution) height `H`.
    pub src_h: usize,
    /// Source width `W`.
    pub src_w: usize,
    /// Output (downsampled) height `h`.
    pub out_h: usize,
    /// Output width `w`.
    pub out_w: usize,
    /// Gaussian kernel standard deviation σ, in *source pixels* (the paper
    /// uses 35–50 for its datasets).
    pub sigma: f32,
}

impl SamplerSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, the output exceeds the source, or
    /// `sigma` is not positive.
    pub fn new(src_h: usize, src_w: usize, out_h: usize, out_w: usize, sigma: f32) -> Self {
        assert!(
            src_h > 0 && src_w > 0 && out_h > 0 && out_w > 0,
            "dimensions must be nonzero"
        );
        assert!(
            out_h <= src_h && out_w <= src_w,
            "output must not exceed source"
        );
        assert!(sigma > 0.0, "sigma must be positive");
        Self {
            src_h,
            src_w,
            out_h,
            out_w,
            sigma,
        }
    }

    /// Downsampling ratio in pixel count (`H·W / h·w`).
    pub fn pixel_ratio(&self) -> f32 {
        (self.src_h * self.src_w) as f32 / (self.out_h * self.out_w) as f32
    }
}

/// The sampling map `H(i, j) = [g1(i, j), g2(i, j)]`: for every output pixel
/// the (fractional) source coordinate it reads.
///
/// Produced by the SOLO accelerator's sensor controller and consumed by
/// (a) the SBS-enabled image sensor, which reads out only the pixels the map
/// selects, and (b) the software samplers below.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexMap {
    ys: Vec<f32>, // g1, row coordinate per output pixel, row-major [out_h*out_w]
    xs: Vec<f32>, // g2, column coordinate
    spec: SamplerSpec,
}

impl IndexMap {
    /// Builds the map from a saliency score grid via Eq. 2/3.
    ///
    /// `saliency` is a rank-2 `[gh, gw]` tensor of non-negative scores (any
    /// resolution — it is interpreted on normalized coordinates). Scores of
    /// zero everywhere degenerate to uniform sampling.
    ///
    /// # Panics
    ///
    /// Panics if `saliency` is not rank-2 or contains negative values.
    pub fn from_saliency(spec: &SamplerSpec, saliency: &Tensor) -> Self {
        assert_eq!(saliency.shape().ndim(), 2, "saliency must be rank-2");
        assert!(
            saliency.as_slice().iter().all(|&v| v >= 0.0),
            "saliency scores must be non-negative"
        );
        let (gh, gw) = (saliency.shape().dim(0), saliency.shape().dim(1));
        let s = saliency.as_slice();
        // Normalized kernel width: σ in source pixels → normalized units.
        let sig_y = spec.sigma / spec.src_h as f32;
        let sig_x = spec.sigma / spec.src_w as f32;
        let total: f32 = saliency.sum();
        let (out_h, out_w) = (spec.out_h, spec.out_w);
        // Coordinate storage comes from the exec scratch pool: the
        // speculation layer builds K candidate maps per saccade and
        // recycles the aborted ones via `IndexMap::recycle`, so candidate
        // churn reuses the same allocations.
        // lint:allow(X1): custody transfers into the returned IndexMap; `IndexMap::recycle` returns it
        let mut ys = exec::take_buf_at("sampler::index_map", out_h * out_w);
        // lint:allow(X1): custody transfers into the returned IndexMap; `IndexMap::recycle` returns it
        let mut xs = exec::take_buf_at("sampler::index_map", out_h * out_w);
        // Precompute grid coordinates (normalized pixel centers).
        let gy: Vec<f32> = (0..gh).map(|i| (i as f32 + 0.5) / gh as f32).collect();
        let gx: Vec<f32> = (0..gw).map(|j| (j as f32 + 0.5) / gw as f32).collect();
        for oi in 0..out_h {
            let cy = (oi as f32 + 0.5) / out_h as f32;
            // Per-row kernel values over grid rows (separable Gaussian).
            let ky: Vec<f32> = gy
                .iter()
                .map(|&y| (-((cy - y) * (cy - y)) / (2.0 * sig_y * sig_y)).exp())
                .collect();
            for oj in 0..out_w {
                let cx = (oj as f32 + 0.5) / out_w as f32;
                let kx: Vec<f32> = gx
                    .iter()
                    .map(|&x| (-((cx - x) * (cx - x)) / (2.0 * sig_x * sig_x)).exp())
                    .collect();
                let mut num_y = 0.0f32;
                let mut num_x = 0.0f32;
                let mut den = 0.0f32;
                for i in 0..gh {
                    let kyi = ky[i];
                    if kyi < 1e-12 {
                        continue;
                    }
                    for j in 0..gw {
                        let w = s[i * gw + j] * kyi * kx[j];
                        den += w;
                        num_y += w * gy[i];
                        num_x += w * gx[j];
                    }
                }
                let (ny, nx) = if den > 1e-12 && total > 0.0 {
                    (num_y / den, num_x / den)
                } else {
                    (cy, cx) // degenerate saliency → uniform
                };
                ys[oi * out_w + oj] =
                    (ny * spec.src_h as f32 - 0.5).clamp(0.0, (spec.src_h - 1) as f32);
                xs[oi * out_w + oj] =
                    (nx * spec.src_w as f32 - 0.5).clamp(0.0, (spec.src_w - 1) as f32);
            }
        }
        Self {
            ys,
            xs,
            spec: *spec,
        }
    }

    /// The uniform (evenly-subsampled) map — what the camera uses to produce
    /// the preview frame `I_f^d`.
    pub fn uniform(spec: &SamplerSpec) -> Self {
        let (out_h, out_w) = (spec.out_h, spec.out_w);
        // lint:allow(X1): custody transfers into the returned IndexMap; `IndexMap::recycle` returns it
        let mut ys = exec::take_buf_at("sampler::index_map", out_h * out_w);
        // lint:allow(X1): custody transfers into the returned IndexMap; `IndexMap::recycle` returns it
        let mut xs = exec::take_buf_at("sampler::index_map", out_h * out_w);
        for oi in 0..out_h {
            let y = ((oi as f32 + 0.5) / out_h as f32 * spec.src_h as f32 - 0.5)
                .clamp(0.0, (spec.src_h - 1) as f32);
            for oj in 0..out_w {
                let x = ((oj as f32 + 0.5) / out_w as f32 * spec.src_w as f32 - 0.5)
                    .clamp(0.0, (spec.src_w - 1) as f32);
                ys[oi * out_w + oj] = y;
                xs[oi * out_w + oj] = x;
            }
        }
        Self {
            ys,
            xs,
            spec: *spec,
        }
    }

    /// The spec this map was built for.
    pub fn spec(&self) -> &SamplerSpec {
        &self.spec
    }

    /// Returns the map's coordinate buffers to the exec scratch pool — the
    /// abort path of a speculative candidate that was never committed.
    /// Dropping a map is also correct (nothing leaks); recycling lets the
    /// next candidate reuse the allocations instead of growing the heap.
    pub fn recycle(self) {
        exec::recycle_buf(self.ys);
        exec::recycle_buf(self.xs);
    }

    /// The fractional source coordinate `(row, col)` for output pixel
    /// `(i, j)` — the paper's `H(i,j) = [g1(i,j), g2(i,j)]`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of range.
    pub fn source_coord(&self, i: usize, j: usize) -> (f32, f32) {
        assert!(
            i < self.spec.out_h && j < self.spec.out_w,
            "index out of range"
        );
        let off = i * self.spec.out_w + j;
        (self.ys[off], self.xs[off])
    }

    /// Integer source pixels (rounded), the exact set the SBS sensor reads.
    pub fn pixel_indices(&self) -> Vec<(usize, usize)> {
        self.ys
            .iter()
            .zip(&self.xs)
            .map(|(&y, &x)| {
                (
                    (y.round() as usize).min(self.spec.src_h - 1),
                    (x.round() as usize).min(self.spec.src_w - 1),
                )
            })
            .collect()
    }

    /// Number of *distinct* source pixels selected (duplicates collapse:
    /// the sensor reads a pixel once however many output cells map to it).
    pub fn unique_pixel_count(&self) -> usize {
        let mut px = self.pixel_indices();
        px.sort_unstable();
        px.dedup();
        px.len()
    }

    /// For each source row, how many distinct selected pixels fall in it.
    /// Drives the SBS readout-round model in `solo-hw`.
    pub fn pixels_per_row(&self) -> Vec<usize> {
        let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); self.spec.src_h];
        for (y, x) in self.pixel_indices() {
            per_row[y].push(x);
        }
        per_row
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v.len()
            })
            .collect()
    }

    /// Samples a `[C, H, W]` image with nearest-neighbour lookup — the
    /// digital equivalent of the SBS sensor readout (the sensor can only
    /// read whole pixels).
    ///
    /// # Panics
    ///
    /// Panics if `img` is not rank-3 or its spatial size differs from the
    /// spec.
    pub fn sample_nearest(&self, img: &Tensor) -> Tensor {
        self.check_img(img);
        let (c, h, w) = (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2));
        let (oh, ow) = (self.spec.out_h, self.spec.out_w);
        let src = img.as_slice();
        let (ys, xs) = (&self.ys, &self.xs);
        // One task per (channel, output row): every output element is
        // written by exactly one worker, so the gather is bit-identical at
        // any pool width.
        let mut out = exec::take_buf(c * oh * ow);
        exec::pool().par_rows(&mut out, ow.max(1), 8 * ow, |r, orow| {
            let ch = r / oh;
            let oi = r % oh;
            let base = ch * h * w;
            for (oj, o) in orow.iter_mut().enumerate() {
                let off = oi * ow + oj;
                let yi = (ys[off].round() as usize).min(h - 1);
                let xi = (xs[off].round() as usize).min(w - 1);
                *o = src[base + yi * w + xi];
            }
        });
        Tensor::from_vec(out, &[c, oh, ow])
    }

    /// Samples with bilinear interpolation at the fractional coordinates —
    /// the differentiable sampler used during training.
    ///
    /// # Panics
    ///
    /// Panics if `img` is not rank-3 or its spatial size differs from the
    /// spec.
    pub fn sample_bilinear(&self, img: &Tensor) -> Tensor {
        self.check_img(img);
        let (c, h, w) = (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2));
        let (oh, ow) = (self.spec.out_h, self.spec.out_w);
        let src = img.as_slice();
        let (ys, xs) = (&self.ys, &self.xs);
        // Partitioned like `sample_nearest`: one (channel, output-row) task
        // per row, each element's interpolation computed by a single worker.
        let mut out = exec::take_buf(c * oh * ow);
        exec::pool().par_rows(&mut out, ow.max(1), 16 * ow, |r, orow| {
            let ch = r / oh;
            let oi = r % oh;
            let base = ch * h * w;
            for (oj, o) in orow.iter_mut().enumerate() {
                let off = oi * ow + oj;
                let (y, x) = (ys[off], xs[off]);
                let y0 = y.floor() as usize;
                let x0 = x.floor() as usize;
                let y1 = (y0 + 1).min(h - 1);
                let x1 = (x0 + 1).min(w - 1);
                let wy = y - y0 as f32;
                let wx = x - x0 as f32;
                let v00 = src[base + y0 * w + x0];
                let v01 = src[base + y0 * w + x1];
                let v10 = src[base + y1 * w + x0];
                let v11 = src[base + y1 * w + x1];
                let top = v00 + (v01 - v00) * wx;
                let bot = v10 + (v11 - v10) * wx;
                *o = top + (bot - top) * wy;
            }
        });
        Tensor::from_vec(out, &[c, oh, ow])
    }

    /// Maps a *source* pixel `(row, col)` to the output cell that samples
    /// nearest to it — the (approximate, axis-separable) inverse of the
    /// mapping, used e.g. to locate the gaze in the warped image.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the source frame.
    pub fn warp_source_point(&self, row: usize, col: usize) -> (usize, usize) {
        assert!(
            row < self.spec.src_h && col < self.spec.src_w,
            "source point out of bounds"
        );
        let (oh, ow) = (self.spec.out_h, self.spec.out_w);
        let mut best_i = 0;
        let mut best_dy = f32::INFINITY;
        for i in 0..oh {
            let mean: f32 = self.ys[i * ow..(i + 1) * ow].iter().sum::<f32>() / ow as f32;
            let d = (mean - row as f32).abs();
            if d < best_dy {
                best_dy = d;
                best_i = i;
            }
        }
        let mut best_j = 0;
        let mut best_dx = f32::INFINITY;
        for j in 0..ow {
            let mut mean = 0.0;
            for i in 0..oh {
                mean += self.xs[i * ow + j];
            }
            mean /= oh as f32;
            let d = (mean - col as f32).abs();
            if d < best_dx {
                best_dx = d;
                best_j = j;
            }
        }
        (best_i, best_j)
    }

    /// The reverse sampler `g⁻¹`: expands a `[C, out_h, out_w]` map (e.g. a
    /// segmentation label map) back to `[C, H, W]`.
    ///
    /// Each source pixel is assigned the output cell whose sampled source
    /// coordinate is nearest — the Voronoi inverse of the warp, seeded by
    /// an axis-separable estimate and refined by a local 2-D search (the
    /// true warp is not separable; pure row/column assignment misplaces
    /// mask pixels badly enough to halve the round-trip IoU of small
    /// objects). Values are copied nearest-neighbour in warped space,
    /// which keeps label maps crisp.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not rank-3 or its spatial size differs from the
    /// spec.
    pub fn upsample(&self, map: &Tensor) -> Tensor {
        assert_eq!(map.shape().ndim(), 3, "upsample input must be [C,h,w]");
        assert_eq!(
            map.shape().dims()[1..],
            [self.spec.out_h, self.spec.out_w],
            "map spatial size does not match spec"
        );
        let (c, oh, ow) = (map.shape().dim(0), self.spec.out_h, self.spec.out_w);
        let (h, w) = (self.spec.src_h, self.spec.src_w);
        // Separable seed: mean source row per output row / column per
        // output column.
        let mut row_centers = vec![0.0f32; oh];
        for i in 0..oh {
            row_centers[i] = self.ys[i * ow..(i + 1) * ow].iter().sum::<f32>() / ow as f32;
        }
        let mut col_centers = vec![0.0f32; ow];
        for j in 0..ow {
            let mut acc = 0.0;
            for i in 0..oh {
                acc += self.xs[i * ow + j];
            }
            col_centers[j] = acc / oh as f32;
        }
        let row_of = nearest_assignment(&row_centers, h);
        let col_of = nearest_assignment(&col_centers, w);
        let (ys, xs) = (&self.ys, &self.xs);
        // Pass 1 — per source pixel, the winning output cell; the search
        // runs once per pixel and is shared by every channel. Cell ids are
        // stored as f32 so the pass rides the pooled f32 row dispatch
        // (exact as long as they fit the f32 mantissa, asserted here).
        assert!(
            oh * ow < (1 << 24),
            "upsample: output cell ids must be f32-exact"
        );
        const R: isize = 2; // refinement radius in output cells
        let mut cells = exec::take_buf(h * w);
        exec::pool().par_rows(&mut cells, w.max(1), 130 * w, |y, orow| {
            let i0 = row_of[y] as isize;
            for (x, o) in orow.iter_mut().enumerate() {
                let j0 = col_of[x] as isize;
                // Refine: nearest sample in the (2R+1)² neighbourhood.
                let mut best = (row_of[y], col_of[x]);
                let mut best_d = f32::INFINITY;
                for di in -R..=R {
                    let i = i0 + di;
                    if i < 0 || i >= oh as isize {
                        continue;
                    }
                    for dj in -R..=R {
                        let j = j0 + dj;
                        if j < 0 || j >= ow as isize {
                            continue;
                        }
                        let (iu, ju) = (i as usize, j as usize);
                        let off = iu * ow + ju;
                        let dy = ys[off] - y as f32;
                        let dx = xs[off] - x as f32;
                        let d = dy * dy + dx * dx;
                        if d < best_d {
                            best_d = d;
                            best = (iu, ju);
                        }
                    }
                }
                *o = (best.0 * ow + best.1) as f32;
            }
        });
        // Pass 2 — nearest-neighbour copy per (channel, source row).
        let src = map.as_slice();
        let mut out = exec::take_buf(c * h * w);
        exec::pool().par_rows(&mut out, w.max(1), 4 * w, |r, orow| {
            let ch = r / h;
            let y = r % h;
            let crow = &cells[y * w..(y + 1) * w];
            for (o, &cell) in orow.iter_mut().zip(crow) {
                let off = cell as usize;
                *o = src[ch * oh * ow + off];
            }
        });
        exec::recycle_buf(cells);
        Tensor::from_vec(out, &[c, h, w])
    }

    fn check_img(&self, img: &Tensor) {
        assert_eq!(img.shape().ndim(), 3, "image must be [C,H,W]");
        assert_eq!(
            img.shape().dims()[1..],
            [self.spec.src_h, self.spec.src_w],
            "image spatial size {} does not match spec ({}×{})",
            img.shape(),
            self.spec.src_h,
            self.spec.src_w
        );
    }
}

/// For each source coordinate `0..n`, the index of the nearest center
/// (centers assumed sorted non-decreasing, as the monotone sampler grids
/// are). Two-pointer sweep, O(n + centers).
fn nearest_assignment(centers: &[f32], n: usize) -> Vec<usize> {
    let mut out = vec![0usize; n];
    let mut k = 0usize;
    for (y, slot) in out.iter_mut().enumerate() {
        let yf = y as f32;
        while k + 1 < centers.len() && (centers[k + 1] - yf).abs() <= (centers[k] - yf).abs() {
            k += 1;
        }
        *slot = k;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaze_saliency;

    fn spec() -> SamplerSpec {
        SamplerSpec::new(64, 64, 16, 16, 8.0)
    }

    #[test]
    fn uniform_map_is_evenly_spaced() {
        let m = IndexMap::uniform(&spec());
        let (y0, x0) = m.source_coord(0, 0);
        let (y1, x1) = m.source_coord(1, 1);
        assert!((y1 - y0 - 4.0).abs() < 1e-4);
        assert!((x1 - x0 - 4.0).abs() < 1e-4);
    }

    #[test]
    fn uniform_saliency_reduces_to_uniform_sampling() {
        let s = Tensor::ones(&[16, 16]);
        let m = IndexMap::from_saliency(&spec(), &s);
        let u = IndexMap::uniform(&spec());
        // The Gaussian-weighted average with flat saliency shrinks toward
        // the grid center slightly at the borders; interior samples match.
        for i in 4..12 {
            for j in 4..12 {
                let (ys, xs) = m.source_coord(i, j);
                let (yu, xu) = u.source_coord(i, j);
                assert!((ys - yu).abs() < 2.0, "row {i},{j}: {ys} vs {yu}");
                assert!((xs - xu).abs() < 2.0, "col {i},{j}: {xs} vs {xu}");
            }
        }
    }

    #[test]
    fn coordinates_stay_in_bounds() {
        let s = gaze_saliency(16, 16, (0.9, 0.1), 0.1, 0.01);
        let m = IndexMap::from_saliency(&spec(), &s);
        for i in 0..16 {
            for j in 0..16 {
                let (y, x) = m.source_coord(i, j);
                assert!((0.0..=63.0).contains(&y));
                assert!((0.0..=63.0).contains(&x));
            }
        }
    }

    #[test]
    fn saliency_attracts_samples() {
        // Gaze at upper-left quadrant: more distinct samples should land in
        // the upper-left quadrant than with uniform sampling.
        let s = gaze_saliency(16, 16, (0.25, 0.25), 0.1, 0.02);
        let m = IndexMap::from_saliency(&spec(), &s);
        let u = IndexMap::uniform(&spec());
        let count_ul = |m: &IndexMap| {
            m.pixel_indices()
                .iter()
                .filter(|&&(y, x)| y < 32 && x < 32)
                .count()
        };
        assert!(
            count_ul(&m) > count_ul(&u) + 16,
            "saliency {} vs uniform {}",
            count_ul(&m),
            count_ul(&u)
        );
    }

    #[test]
    fn mapping_is_monotone_along_axes() {
        let s = gaze_saliency(16, 16, (0.5, 0.5), 0.15, 0.05);
        let m = IndexMap::from_saliency(&spec(), &s);
        for i in 0..16 {
            for j in 1..16 {
                let (_, x_prev) = m.source_coord(i, j - 1);
                let (_, x) = m.source_coord(i, j);
                assert!(x >= x_prev - 1e-3, "row {i}: col coords not monotone");
            }
        }
        for j in 0..16 {
            for i in 1..16 {
                let (y_prev, _) = m.source_coord(i - 1, j);
                let (y, _) = m.source_coord(i, j);
                assert!(y >= y_prev - 1e-3, "col {j}: row coords not monotone");
            }
        }
    }

    #[test]
    fn sample_nearest_reads_exact_pixels() {
        let mut img = Tensor::zeros(&[1, 64, 64]);
        for (y, x) in IndexMap::uniform(&spec()).pixel_indices() {
            img.set(&[0, y, x], 1.0);
        }
        let out = IndexMap::uniform(&spec()).sample_nearest(&img);
        assert!(out.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn sample_bilinear_constant_image() {
        let img = Tensor::full(&[2, 64, 64], 0.3);
        let s = gaze_saliency(16, 16, (0.7, 0.3), 0.1, 0.02);
        let out = IndexMap::from_saliency(&spec(), &s).sample_bilinear(&img);
        assert!(out.as_slice().iter().all(|&v| (v - 0.3).abs() < 1e-5));
    }

    #[test]
    fn upsample_inverts_uniform_sampling_of_blocky_image() {
        // A blocky image that is constant within 4×4 blocks survives a
        // 16×16 round trip exactly under the uniform map.
        let mut img = Tensor::zeros(&[1, 64, 64]);
        for y in 0..64 {
            for x in 0..64 {
                img.set(&[0, y, x], ((y / 4 + x / 4) % 2) as f32);
            }
        }
        let m = IndexMap::uniform(&spec());
        let down = m.sample_nearest(&img);
        let up = m.upsample(&down);
        let diff: f32 = img.sub(&up).norm_sq();
        assert_eq!(diff, 0.0);
    }

    #[test]
    fn unique_pixels_never_exceed_outputs() {
        let s = gaze_saliency(16, 16, (0.5, 0.5), 0.08, 0.01);
        let m = IndexMap::from_saliency(&spec(), &s);
        assert!(m.unique_pixel_count() <= 16 * 16);
        assert!(m.unique_pixel_count() > 0);
    }

    #[test]
    fn pixels_per_row_sums_to_unique_count() {
        let s = gaze_saliency(16, 16, (0.4, 0.6), 0.1, 0.02);
        let m = IndexMap::from_saliency(&spec(), &s);
        let sum: usize = m.pixels_per_row().iter().sum();
        assert_eq!(sum, m.unique_pixel_count());
    }

    #[test]
    fn recycled_buffers_do_not_leak_into_later_maps() {
        // The speculation abort path: building a map after recycling one
        // must give bit-identical coordinates (pooled buffers are re-zeroed
        // on handout).
        let s = gaze_saliency(16, 16, (0.3, 0.7), 0.1, 0.02);
        let fresh = IndexMap::from_saliency(&spec(), &s);
        let copy = fresh.clone();
        fresh.recycle();
        let rebuilt = IndexMap::from_saliency(&spec(), &s);
        assert_eq!(copy, rebuilt);
        let u = IndexMap::uniform(&spec());
        u.recycle();
        assert_eq!(IndexMap::uniform(&spec()), IndexMap::uniform(&spec()));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_saliency() {
        let s = Tensor::full(&[4, 4], -1.0);
        IndexMap::from_saliency(&spec(), &s);
    }

    #[test]
    #[should_panic(expected = "must not exceed source")]
    fn spec_rejects_upsampling() {
        SamplerSpec::new(8, 8, 16, 16, 4.0);
    }
}
