//! Property-based tests on the Eq. 2/3 sampler invariants.

use proptest::prelude::*;
use solo_sampler::{gaze_saliency, uniform_subsample, IndexMap, SamplerSpec};
use solo_tensor::Tensor;

fn gaze() -> impl Strategy<Value = (f32, f32)> {
    (0.05f32..0.95, 0.05f32..0.95)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coordinates_always_in_bounds(g in gaze(), sigma in 2.0f32..20.0) {
        let spec = SamplerSpec::new(64, 64, 16, 16, sigma);
        let s = gaze_saliency(16, 16, g, 0.1, 0.02);
        let map = IndexMap::from_saliency(&spec, &s);
        for (r, c) in map.pixel_indices() {
            prop_assert!(r < 64 && c < 64);
        }
    }

    #[test]
    fn mapping_is_monotone(g in gaze()) {
        let spec = SamplerSpec::new(64, 64, 12, 12, 8.0);
        let s = gaze_saliency(12, 12, g, 0.12, 0.02);
        let map = IndexMap::from_saliency(&spec, &s);
        for i in 0..12 {
            for j in 1..12 {
                let (_, x0) = map.source_coord(i, j - 1);
                let (_, x1) = map.source_coord(i, j);
                prop_assert!(x1 >= x0 - 1e-3, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn sampling_constant_images_is_exact(
        g in gaze(),
        value in 0.0f32..1.0,
    ) {
        let spec = SamplerSpec::new(32, 32, 8, 8, 5.0);
        let s = gaze_saliency(8, 8, g, 0.1, 0.05);
        let map = IndexMap::from_saliency(&spec, &s);
        let img = Tensor::full(&[3, 32, 32], value);
        for &v in map.sample_bilinear(&img).as_slice() {
            prop_assert!((v - value).abs() < 1e-5);
        }
        for &v in map.sample_nearest(&img).as_slice() {
            prop_assert!(v == value);
        }
    }

    #[test]
    fn upsample_output_values_come_from_input(g in gaze()) {
        let spec = SamplerSpec::new(32, 32, 8, 8, 6.0);
        let s = gaze_saliency(8, 8, g, 0.1, 0.02);
        let map = IndexMap::from_saliency(&spec, &s);
        let small = Tensor::arange(64).reshape(&[1, 8, 8]);
        let up = map.upsample(&small);
        for &v in up.as_slice() {
            prop_assert!(small.as_slice().contains(&v));
        }
    }

    #[test]
    fn uniform_subsample_values_come_from_input(
        data in proptest::collection::vec(0.0f32..1.0, 24 * 24),
        oh in 1usize..24,
    ) {
        let img = Tensor::from_vec(data, &[1, 24, 24]);
        let out = uniform_subsample(&img, oh, oh);
        for &v in out.as_slice() {
            prop_assert!(img.as_slice().contains(&v));
        }
    }

    #[test]
    fn warp_source_point_is_in_output_range(g in gaze(), r in 0usize..64, c in 0usize..64) {
        let spec = SamplerSpec::new(64, 64, 16, 16, 8.0);
        let s = gaze_saliency(16, 16, g, 0.1, 0.02);
        let map = IndexMap::from_saliency(&spec, &s);
        let (i, j) = map.warp_source_point(r, c);
        prop_assert!(i < 16 && j < 16);
    }
}
