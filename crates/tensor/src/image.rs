//! Image-shaped tensor utilities: resampling and pooling over `[C, H, W]`.
//!
//! Both kernels dispatch through [`crate::exec`], partitioned over whole
//! output scanlines so results are bit-identical at any pool width.

use crate::{exec, Tensor};

/// Bilinearly resizes a `[C, H, W]` tensor to `[C, out_h, out_w]`.
///
/// Uses the align-corners=false convention (pixel centers at `i + 0.5`),
/// matching the evenly-subsampled `I_f^d` the paper feeds to ESNet and the
/// reverse-sampler interpolation used to upscale label maps.
///
/// # Panics
///
/// Panics if `input` is not rank-3 or either output dimension is zero.
pub fn bilinear_resize(input: &Tensor, out_h: usize, out_w: usize) -> Tensor {
    assert_eq!(
        input.shape().ndim(),
        3,
        "bilinear_resize input must be [C,H,W]"
    );
    assert!(out_h > 0 && out_w > 0, "output dimensions must be nonzero");
    let (c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
    );
    let src = input.as_slice();
    let mut out = exec::take_buf(c * out_h * out_w);
    let sy = h as f32 / out_h as f32;
    let sx = w as f32 / out_w as f32;
    // One output scanline (channel ch, output row oi) per task.
    exec::pool().par_rows(&mut out, out_w, 12 * out_w, |r, orow| {
        let ch = r / out_h;
        let oi = r % out_h;
        let base = ch * h * w;
        let fy = ((oi as f32 + 0.5) * sy - 0.5).clamp(0.0, (h - 1) as f32);
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(h - 1);
        let wy = fy - y0 as f32;
        for (oj, o) in orow.iter_mut().enumerate() {
            let fx = ((oj as f32 + 0.5) * sx - 0.5).clamp(0.0, (w - 1) as f32);
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(w - 1);
            let wx = fx - x0 as f32;
            let v00 = src[base + y0 * w + x0];
            let v01 = src[base + y0 * w + x1];
            let v10 = src[base + y1 * w + x0];
            let v11 = src[base + y1 * w + x1];
            let top = v00 + (v01 - v00) * wx;
            let bot = v10 + (v11 - v10) * wx;
            *o = top + (bot - top) * wy;
        }
    });
    Tensor::from_vec(out, &[c, out_h, out_w])
}

/// Average-pools a `[C, H, W]` tensor with a square window and equal stride.
///
/// This is the *Average Downsampling (AD)* primitive from the paper's
/// baseline comparison. Partial windows at the right/bottom edges average
/// over the pixels actually covered.
///
/// # Panics
///
/// Panics if `input` is not rank-3 or `window == 0`.
pub fn avg_pool2d(input: &Tensor, window: usize) -> Tensor {
    pool2d(input, window, Mode::Avg)
}

/// Max-pools a `[C, H, W]` tensor with a square window and equal stride.
///
/// # Panics
///
/// Panics if `input` is not rank-3 or `window == 0`.
pub fn max_pool2d(input: &Tensor, window: usize) -> Tensor {
    pool2d(input, window, Mode::Max)
}

#[derive(Clone, Copy)]
enum Mode {
    Avg,
    Max,
}

fn pool2d(input: &Tensor, window: usize, mode: Mode) -> Tensor {
    assert_eq!(input.shape().ndim(), 3, "pool input must be [C,H,W]");
    assert!(window > 0, "pool window must be nonzero");
    let (c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
    );
    let oh = h.div_ceil(window);
    let ow = w.div_ceil(window);
    let src = input.as_slice();
    let mut out = exec::take_buf(c * oh * ow);
    // One output scanline (channel ch, output row oi) per task.
    exec::pool().par_rows(&mut out, ow.max(1), 2 * ow * window * window, |r, orow| {
        let ch = r / oh;
        let oi = r % oh;
        for (oj, o) in orow.iter_mut().enumerate() {
            let y0 = oi * window;
            let x0 = oj * window;
            let y1 = (y0 + window).min(h);
            let x1 = (x0 + window).min(w);
            let mut acc = match mode {
                Mode::Avg => 0.0,
                Mode::Max => f32::NEG_INFINITY,
            };
            for y in y0..y1 {
                for x in x0..x1 {
                    let v = src[(ch * h + y) * w + x];
                    match mode {
                        Mode::Avg => acc += v,
                        Mode::Max => acc = acc.max(v),
                    }
                }
            }
            if let Mode::Avg = mode {
                acc /= ((y1 - y0) * (x1 - x0)) as f32;
            }
            *o = acc;
        }
    });
    Tensor::from_vec(out, &[c, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_identity_when_same_size() {
        let img = Tensor::arange(12).reshape(&[1, 3, 4]);
        let out = bilinear_resize(&img, 3, 4);
        for (a, b) in img.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn resize_constant_image_stays_constant() {
        let img = Tensor::full(&[3, 8, 8], 0.7);
        let out = bilinear_resize(&img, 3, 5);
        for &v in out.as_slice() {
            assert!((v - 0.7).abs() < 1e-6);
        }
    }

    #[test]
    fn resize_preserves_mean_approximately() {
        let img = Tensor::arange(64).reshape(&[1, 8, 8]);
        let out = bilinear_resize(&img, 4, 4);
        assert!((img.mean() - out.mean()).abs() < 1.0);
    }

    #[test]
    fn avg_pool_halves_dims() {
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let out = avg_pool2d(&img, 2);
        assert_eq!(out.shape().dims(), &[1, 1, 1]);
        assert_eq!(out.at(&[0, 0, 0]), 2.5);
    }

    #[test]
    fn avg_pool_partial_window_at_edge() {
        let img = Tensor::arange(6).reshape(&[1, 2, 3]);
        let out = avg_pool2d(&img, 2);
        assert_eq!(out.shape().dims(), &[1, 1, 2]);
        // Right window covers columns {2} only: (2 + 5) / 2.
        assert_eq!(out.at(&[0, 0, 1]), 3.5);
    }

    #[test]
    fn max_pool_takes_maximum() {
        let img = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 2, 2]);
        assert_eq!(max_pool2d(&img, 2).at(&[0, 0, 0]), 9.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn resize_rejects_zero_output() {
        bilinear_resize(&Tensor::zeros(&[1, 2, 2]), 0, 2);
    }
}
