//! Panel packing for the blocked GEMM, and the packed-weight cache.
//!
//! The blocked kernel behind [`Tensor::matmul`] never walks the operand
//! matrices in their row-major layout. Instead both sides are repacked
//! into *panels* whose element order matches the micro-kernel's access
//! pattern exactly, so the hot loop reads nothing but forward-contiguous
//! memory:
//!
//! * the right-hand side `[k, n]` becomes `⌈n/NR⌉` **column panels**, each
//!   holding `k × NR` values p-major (`b[p][j0..j0+NR]` for ascending
//!   `p`), zero-padded in the last panel;
//! * the left-hand side `[m, k]` becomes `⌈m/MR⌉` **row panels**, each
//!   holding `k × MR` values p-major (`a[i0..i0+MR][p]` for ascending
//!   `p`), zero-padded in the last panel.
//!
//! The micro-kernel then keeps an `MR × NR` block of accumulators in
//! registers and streams both panels once, accumulating over the *entire*
//! `k` extent in ascending order. Because every output element's
//! floating-point accumulation chain is exactly the chain the naive
//! i-k-j kernel produces (same terms, same order, same zero-skip on the
//! left operand), the blocked kernel is bit-identical to the reference
//! kernel — and therefore to itself at any pool width, since row spans
//! only change *which worker* owns a chain, never the chain itself.
//!
//! [`PackedMatrix`] makes the packing reusable across calls: inference
//! constants (`Linear`/`Conv` weights, attention projections) are packed
//! once per parameter version through [`PackedCache`], which repacks only
//! when the owner reports a new version (invalidation-on-write).

use crate::{exec, Im2ColSpec, Tensor};

/// Register-tile rows of the micro-kernel (rows of A per panel).
pub const MR: usize = 4;

/// Register-tile columns of the micro-kernel (columns of B per panel).
pub const NR: usize = 16;

/// Which operand a [`PackedMatrix`] was packed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelKind {
    /// Left operand of a GEMM: row panels of `MR` rows, p-major.
    Lhs,
    /// Right operand of a GEMM: column panels of `NR` columns, p-major.
    Rhs,
}

/// A matrix repacked into micro-kernel panels (see the module docs).
///
/// Packing preserves values exactly — it is a permutation plus zero
/// padding that the kernel never lets escape into the output — so a GEMM
/// over packed operands is bit-identical to the same GEMM packed on the
/// fly.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMatrix {
    data: Vec<f32>,
    /// Logical row count of the packed matrix (`m` for Lhs, `k` for Rhs).
    rows: usize,
    /// Logical column count (`k` for Lhs, `n` for Rhs).
    cols: usize,
    kind: PanelKind,
}

impl PackedMatrix {
    /// Packs a `[k, n]` right-hand operand into column panels.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank-2.
    pub fn pack_rhs(b: &Tensor) -> Self {
        assert_eq!(b.shape().ndim(), 2, "pack_rhs requires rank-2");
        let (k, n) = (b.shape().dim(0), b.shape().dim(1));
        let mut data = vec![0.0f32; n.div_ceil(NR).max(1) * k * NR];
        pack_rhs_into(&mut data, b.as_slice(), k, n);
        Self {
            data,
            rows: k,
            cols: n,
            kind: PanelKind::Rhs,
        }
    }

    /// Packs the *transpose* of an `[n, k]` matrix into column panels —
    /// equivalent to `pack_rhs(&w.transpose())` without materializing the
    /// transpose. This is the shape `Linear` wants: its weight is stored
    /// `[out, in]` but multiplies as `x · Wᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank-2.
    pub fn pack_rhs_transposed(w: &Tensor) -> Self {
        assert_eq!(w.shape().ndim(), 2, "pack_rhs_transposed requires rank-2");
        let (n, k) = (w.shape().dim(0), w.shape().dim(1));
        let mut data = vec![0.0f32; n.div_ceil(NR).max(1) * k * NR];
        pack_rhs_transposed_into(&mut data, w.as_slice(), n, k);
        Self {
            data,
            rows: k,
            cols: n,
            kind: PanelKind::Rhs,
        }
    }

    /// Packs an `[m, k]` left-hand operand into row panels.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not rank-2.
    pub fn pack_lhs(a: &Tensor) -> Self {
        assert_eq!(a.shape().ndim(), 2, "pack_lhs requires rank-2");
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let mut data = vec![0.0f32; m.div_ceil(MR).max(1) * k * MR];
        pack_lhs_into(&mut data, a.as_slice(), m, k);
        Self {
            data,
            rows: m,
            cols: k,
            kind: PanelKind::Lhs,
        }
    }

    /// Packs the *transpose* of a `[k, m]` matrix into row panels —
    /// equivalent to `pack_lhs(&w.transpose())` without materializing the
    /// transpose. This is the shape the convolution backward pass wants:
    /// `dcols = Wᵀ · g` with the `[outC, C·k·k]` weight as the constant
    /// left operand.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank-2.
    pub fn pack_lhs_transposed(w: &Tensor) -> Self {
        assert_eq!(w.shape().ndim(), 2, "pack_lhs_transposed requires rank-2");
        let (k, m) = (w.shape().dim(0), w.shape().dim(1));
        let mut data = vec![0.0f32; m.div_ceil(MR).max(1) * k * MR];
        pack_lhs_transposed_into(&mut data, w.as_slice(), k, m);
        Self {
            data,
            rows: m,
            cols: k,
            kind: PanelKind::Lhs,
        }
    }

    /// Logical row count (`m` for Lhs panels, `k` for Rhs panels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count (`k` for Lhs panels, `n` for Rhs panels).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Which GEMM operand the panels were laid out for.
    pub fn kind(&self) -> PanelKind {
        self.kind
    }

    /// The packed panel storage (p-major; see the module docs).
    pub(crate) fn panels(&self) -> &[f32] {
        &self.data
    }
}

/// A one-slot packed-weight cache keyed by a parameter version.
///
/// Owners (e.g. `solo-nn` layers) bump their version counter on every
/// mutable access to the parameter value; `get_or_pack` repacks only when
/// the version it sees differs from the one it cached — so inference-time
/// constants are packed once per training step instead of once per frame,
/// and a weight update can never be served from a stale packing.
///
/// The slot is generic over the packed representation: the f32 path caches
/// a [`PackedMatrix`] (the default), the quantized path a
/// [`QPackedMatrix`] whose per-channel scales requantize under exactly the
/// same version key.
#[derive(Debug, Clone)]
pub struct PackedCache<T = PackedMatrix> {
    slot: Option<(u64, T)>,
}

impl<T> Default for PackedCache<T> {
    fn default() -> Self {
        Self { slot: None }
    }
}

impl<T> PackedCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached packing for `version`, invoking `pack` to build
    /// (or rebuild) it when the cache is empty or holds a different
    /// version.
    pub fn get_or_pack(&mut self, version: u64, pack: impl FnOnce() -> T) -> &T {
        if !matches!(&self.slot, Some((v, _)) if *v == version) {
            self.slot = Some((version, pack()));
        }
        match &self.slot {
            Some((_, p)) => p,
            // Unreachable: the slot was populated just above.
            None => unreachable!("PackedCache slot populated above"),
        }
    }

    /// Drops the cached packing (the next `get_or_pack` repacks).
    pub fn invalidate(&mut self) {
        self.slot = None;
    }

    /// The version of the packing currently held, if any. Exposed so tests
    /// can assert the repack-on-update contract.
    pub fn cached_version(&self) -> Option<u64> {
        self.slot.as_ref().map(|(v, _)| *v)
    }
}

/// A process-wide, thread-safe [`PackedCache`]: every serving session holds
/// a clone of one `SharedPackedCache`, so a weight matrix packs exactly
/// once per parameter *version* per process — never once per session.
///
/// The cached packing is handed out behind an [`Arc`], so sessions keep
/// using the panels they fetched even while another session triggers a
/// repack for a newer version; the old panels drop when the last holder
/// releases them. [`SharedPackedCache::pack_count`] counts how many times
/// the pack closure actually ran, which is what the staleness tests pin:
/// a version bump repacks once, not once per session.
#[derive(Debug)]
pub struct SharedPackedCache<T = PackedMatrix> {
    inner: std::sync::Arc<std::sync::Mutex<SharedSlot<T>>>,
}

#[derive(Debug)]
struct SharedSlot<T> {
    cache: PackedCache<std::sync::Arc<T>>,
    packs: u64,
}

impl<T> Clone for SharedPackedCache<T> {
    fn clone(&self) -> Self {
        Self {
            inner: std::sync::Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for SharedPackedCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SharedPackedCache<T> {
    /// An empty shared cache.
    pub fn new() -> Self {
        Self {
            inner: std::sync::Arc::new(std::sync::Mutex::new(SharedSlot {
                cache: PackedCache::new(),
                packs: 0,
            })),
        }
    }

    /// Returns the shared packing for `version`, invoking `pack` at most
    /// once per version change across every clone of this cache.
    pub fn get_or_pack(&self, version: u64, pack: impl FnOnce() -> T) -> std::sync::Arc<T> {
        let mut slot = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut packed = false;
        let panels = std::sync::Arc::clone(slot.cache.get_or_pack(version, || {
            packed = true;
            std::sync::Arc::new(pack())
        }));
        if packed {
            slot.packs += 1;
        }
        panels
    }

    /// Drops the cached packing (the next `get_or_pack` repacks).
    pub fn invalidate(&self) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .cache
            .invalidate();
    }

    /// The version currently cached, if any.
    pub fn cached_version(&self) -> Option<u64> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .cache
            .cached_version()
    }

    /// How many times the pack closure has actually run — the number of
    /// repacks the whole process paid, across all clones.
    pub fn pack_count(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).packs
    }
}

/// Packs row-major `b` (`k × n`) into `⌈n/NR⌉` p-major column panels.
/// `data` must be zeroed and sized `⌈n/NR⌉·k·NR` (padding lanes stay zero).
pub(crate) fn pack_rhs_into(data: &mut [f32], src: &[f32], k: usize, n: usize) {
    for jp in 0..n / NR {
        // Full panels: each source row contributes NR contiguous values.
        let panel = &mut data[jp * k * NR..(jp + 1) * k * NR];
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            dst.copy_from_slice(&src[p * n + jp * NR..p * n + jp * NR + NR]);
        }
    }
    if n % NR != 0 {
        let jp = n / NR;
        let width = n - jp * NR;
        let panel = &mut data[jp * k * NR..(jp + 1) * k * NR];
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            dst[..width].copy_from_slice(&src[p * n + jp * NR..p * n + n]);
        }
    }
}

/// Packs row-major `a` (`m × k`) into `⌈m/MR⌉` p-major row panels.
fn pack_lhs_into(data: &mut [f32], src: &[f32], m: usize, k: usize) {
    for ip in 0..m.div_ceil(MR) {
        let i0 = ip * MR;
        let height = MR.min(m - i0);
        let panel = &mut data[ip * k * MR..(ip + 1) * k * MR];
        for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
            for (r, v) in dst[..height].iter_mut().enumerate() {
                *v = src[(i0 + r) * k + p];
            }
        }
    }
}

/// Packs the transpose of row-major `w` (`n × k`) into `⌈n/NR⌉` p-major
/// column panels — exactly the panels [`pack_rhs_into`] would produce for
/// the materialized `wᵀ` (`k × n`). Column `j` of `wᵀ` is row `j` of `w`,
/// so the pack reads `w` row-wise with stride `k`. `data` must be zeroed
/// and sized `⌈n/NR⌉·k·NR`.
pub(crate) fn pack_rhs_transposed_into(data: &mut [f32], src: &[f32], n: usize, k: usize) {
    for jp in 0..n.div_ceil(NR) {
        let j0 = jp * NR;
        let width = NR.min(n - j0);
        let panel = &mut data[jp * k * NR..(jp + 1) * k * NR];
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            // Column j of wᵀ is row j of w: dst[s] = w[j0+s][p].
            for (s, v) in dst[..width].iter_mut().enumerate() {
                *v = src[(j0 + s) * k + p];
            }
        }
    }
}

/// Packs the transpose of row-major `w` (`k × m`) into `⌈m/MR⌉` p-major
/// row panels — exactly the panels [`pack_lhs_into`] would produce for the
/// materialized `wᵀ` (`m × k`). Row `i0+r` of `wᵀ` at depth `p` is
/// `w[p][i0+r]`, so each panel row is a *contiguous* slice of a source
/// row: this pack is a strided memcpy, cheaper than transposing. `data`
/// must be zeroed and sized `⌈m/MR⌉·k·MR`.
pub(crate) fn pack_lhs_transposed_into(data: &mut [f32], src: &[f32], k: usize, m: usize) {
    for ip in 0..m.div_ceil(MR) {
        let i0 = ip * MR;
        let height = MR.min(m - i0);
        let panel = &mut data[ip * k * MR..(ip + 1) * k * MR];
        for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
            dst[..height].copy_from_slice(&src[p * m + i0..p * m + i0 + height]);
        }
    }
}

/// Packs the im2col patch matrix of a `[C, H, W]` image into p-major column
/// panels, straight from the image — exactly the panels [`pack_rhs_into`]
/// would produce for the materialized `[C·k·k, outH·outW]` matrix, which
/// therefore never has to exist. Lane `s` of panel `jp` at depth `p` is the
/// zero-padded pixel kernel tap `p` reads at output position `jp·NR + s`
/// ([`Im2ColSpec::pixel`] — the same geometry rule [`crate::im2col`]
/// applies), so every packed value is a pure copy of the materialized one
/// and the downstream GEMM is bit-identical. `data` must be zeroed and
/// sized `⌈outH·outW/NR⌉·C·k²·NR`.
pub(crate) fn pack_rhs_im2col_into(data: &mut [f32], src: &[f32], spec: &Im2ColSpec) {
    let rows = spec.patch_rows();
    let cols = spec.patch_cols();
    let ow = spec.out_width();
    let (h, w) = (spec.height, spec.width);
    let stride = spec.stride;
    let panel_len = rows * NR;
    // One task per column panel: panels are disjoint chunks of `data`, and
    // every lane is a pure function of (panel, p, lane), so the dispatch is
    // bit-identical at any pool width.
    exec::pool().par_rows(data, panel_len, 2 * panel_len, |jp, panel| {
        let j0 = jp * NR;
        let width = NR.min(cols - j0);
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            let (c, ki, kj) = spec.tap(p);
            let ib = (ki * spec.dilation) as isize - spec.padding as isize;
            let jb = (kj * spec.dilation) as isize - spec.padding as isize;
            let plane = &src[c * h * w..(c + 1) * h * w];
            // Lanes sharing an output row form a run whose input reads
            // advance by `stride`; out-of-bounds taps keep the buffer's
            // pre-zeroed lanes, which is exactly the zero padding.
            let mut s = 0;
            while s < width {
                let (oi, oj) = ((j0 + s) / ow, (j0 + s) % ow);
                let run = (ow - oj).min(width - s);
                let ii = (oi * stride) as isize + ib;
                if 0 <= ii && ii < h as isize {
                    let row = &plane[ii as usize * w..(ii as usize + 1) * w];
                    let jj = (oj * stride) as isize + jb;
                    if stride == 1 {
                        // Unit stride: the in-bounds middle of the run is one
                        // contiguous copy from the input row.
                        let lo = (-jj).clamp(0, run as isize) as usize;
                        let hi = (w as isize - jj).clamp(0, run as isize) as usize;
                        if hi > lo {
                            dst[s + lo..s + hi].copy_from_slice(
                                &row[(jj + lo as isize) as usize..(jj + hi as isize) as usize],
                            );
                        }
                    } else {
                        // Strided gather: precompute the in-bounds lane
                        // range so the inner loop is a branch-free strided
                        // read. Lane `t` reads column `jj + t·stride`,
                        // in-bounds for `lo ≤ t < hi`; the lanes outside
                        // keep the buffer's pre-zeroed padding.
                        let lo = if jj >= 0 {
                            0
                        } else {
                            ((-jj) as usize).div_ceil(stride).min(run)
                        };
                        let hi = if (w as isize) > jj {
                            ((w as isize - jj) as usize).div_ceil(stride).min(run)
                        } else {
                            0
                        };
                        if hi > lo {
                            let mut src_j = (jj + (lo * stride) as isize) as usize;
                            for v in &mut dst[s + lo..s + hi] {
                                *v = row[src_j];
                                src_j += stride;
                            }
                        }
                    }
                }
                s += run;
            }
        }
    });
}

/// Packs the *transpose* of the im2col patch matrix (`[outH·outW, C·k·k]`)
/// into p-major column panels, straight from the image — the right-hand
/// operand of `dW = g · colsᵀ` in the convolution backward pass. Panels
/// run over the kernel taps; the p-extent runs over output positions. Same
/// geometry rule, same bit-identity argument as [`pack_rhs_im2col_into`].
/// `data` must be zeroed and sized `⌈C·k²/NR⌉·outH·outW·NR`.
pub(crate) fn pack_rhs_im2col_t_into(data: &mut [f32], src: &[f32], spec: &Im2ColSpec) {
    let rows = spec.patch_rows();
    let cols = spec.patch_cols();
    let (oh, ow) = (spec.out_height(), spec.out_width());
    let (h, w) = (spec.height, spec.width);
    let stride = spec.stride;
    let panel_len = cols * NR;
    // One task per panel (disjoint `data` chunks, pure lane values: same
    // width-invariance argument as `pack_rhs_im2col_into`).
    exec::pool().par_rows(data, panel_len, 2 * panel_len, |jp, panel| {
        let j0 = jp * NR;
        let width = NR.min(rows - j0);
        // Hoist each lane's tap geometry out of the output-position sweep.
        let (mut ib, mut jb, mut base) = ([0isize; NR], [0isize; NR], [0usize; NR]);
        for s in 0..width {
            let (c, ki, kj) = spec.tap(j0 + s);
            ib[s] = (ki * spec.dilation) as isize - spec.padding as isize;
            jb[s] = (kj * spec.dilation) as isize - spec.padding as isize;
            base[s] = c * h * w;
        }
        let mut chunks = panel.chunks_exact_mut(NR);
        for oi in 0..oh {
            let i0 = (oi * stride) as isize;
            for oj in 0..ow {
                // The panel holds exactly outH·outW depth chunks, one per
                // (oi, oj) in row-major order.
                // lint:allow(P1): panel.len() == cols·NR with cols == oh·ow
                let dst = chunks.next().expect("panel depth matches outH*outW");
                let jpos = (oj * stride) as isize;
                for s in 0..width {
                    let (ii, jj) = (i0 + ib[s], jpos + jb[s]);
                    if 0 <= ii && ii < h as isize && 0 <= jj && jj < w as isize {
                        dst[s] = src[base[s] + ii as usize * w + jj as usize];
                    }
                }
            }
        }
    });
}

/// Lane-parallel AVX2 variant of the scalar micro-kernel.
///
/// The vectorization is purely over the `NR` lane dimension: each output
/// element's accumulation chain is still the scalar chain (one mul, one
/// add per non-zero `p`, ascending `p`), just computed for eight `j` lanes
/// at once with `vmulps`/`vaddps`. No FMA is emitted — multiply and add
/// stay separate instructions with separate roundings — so the result is
/// bit-identical to the scalar micro-kernel, and the runtime dispatch
/// between the two can never change an output. `unsafe` here is the
/// workspace's sanctioned exception: it is confined to this module and
/// consists only of the `target_feature` call contract plus unaligned
/// loads/stores whose bounds are pinned by `chunks_exact`/array types.
#[cfg(target_arch = "x86_64")]
mod simd {
    #![allow(unsafe_code)]

    use super::{MR, NR};
    use core::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };

    /// Whether the AVX2 micro-kernel may be dispatched (detected once).
    pub fn available() -> bool {
        static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    /// AVX2 micro-kernel; see the module docs for the bit-identity
    /// argument.
    ///
    /// # Safety
    ///
    /// The caller must have verified [`available`] returns true. The slice
    /// geometry (`a_panel.len() == k·MR`, `b_panel.len() == k·NR`) is
    /// enforced by `chunks_exact`, and every load/store is the unaligned
    /// variant, so no further alignment or bounds contract is needed.
    #[target_feature(enable = "avx2")]
    pub unsafe fn microkernel(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
        const { assert!(NR == 16, "AVX2 kernel assumes two 8-lane registers per row") };
        const { assert!(MR == 4, "AVX2 kernel unrolls exactly four rows") };
        let mut a0l = _mm256_loadu_ps(acc[0].as_ptr());
        let mut a0h = _mm256_loadu_ps(acc[0][8..].as_ptr());
        let mut a1l = _mm256_loadu_ps(acc[1].as_ptr());
        let mut a1h = _mm256_loadu_ps(acc[1][8..].as_ptr());
        let mut a2l = _mm256_loadu_ps(acc[2].as_ptr());
        let mut a2h = _mm256_loadu_ps(acc[2][8..].as_ptr());
        let mut a3l = _mm256_loadu_ps(acc[3].as_ptr());
        let mut a3h = _mm256_loadu_ps(acc[3][8..].as_ptr());
        for (ap, bp) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
            let bl = _mm256_loadu_ps(bp.as_ptr());
            let bh = _mm256_loadu_ps(bp[8..].as_ptr());
            // Same `== 0.0` skip (and NaN semantics) as the scalar kernel.
            if ap[0] != 0.0 {
                let av = _mm256_set1_ps(ap[0]);
                a0l = _mm256_add_ps(a0l, _mm256_mul_ps(av, bl));
                a0h = _mm256_add_ps(a0h, _mm256_mul_ps(av, bh));
            }
            if ap[1] != 0.0 {
                let av = _mm256_set1_ps(ap[1]);
                a1l = _mm256_add_ps(a1l, _mm256_mul_ps(av, bl));
                a1h = _mm256_add_ps(a1h, _mm256_mul_ps(av, bh));
            }
            if ap[2] != 0.0 {
                let av = _mm256_set1_ps(ap[2]);
                a2l = _mm256_add_ps(a2l, _mm256_mul_ps(av, bl));
                a2h = _mm256_add_ps(a2h, _mm256_mul_ps(av, bh));
            }
            if ap[3] != 0.0 {
                let av = _mm256_set1_ps(ap[3]);
                a3l = _mm256_add_ps(a3l, _mm256_mul_ps(av, bl));
                a3h = _mm256_add_ps(a3h, _mm256_mul_ps(av, bh));
            }
        }
        _mm256_storeu_ps(acc[0].as_mut_ptr(), a0l);
        _mm256_storeu_ps(acc[0][8..].as_mut_ptr(), a0h);
        _mm256_storeu_ps(acc[1].as_mut_ptr(), a1l);
        _mm256_storeu_ps(acc[1][8..].as_mut_ptr(), a1h);
        _mm256_storeu_ps(acc[2].as_mut_ptr(), a2l);
        _mm256_storeu_ps(acc[2][8..].as_mut_ptr(), a2h);
        _mm256_storeu_ps(acc[3].as_mut_ptr(), a3l);
        _mm256_storeu_ps(acc[3][8..].as_mut_ptr(), a3h);
    }
}

/// The register-tiled micro-kernel: accumulates the full-`k` product of
/// one `MR`-row A panel and one `NR`-column B panel into `acc`.
///
/// The accumulation runs over ascending `p` with the same
/// skip-zero-left-operand rule as the reference kernel, so each
/// accumulator's floating-point chain is exactly the reference chain for
/// its output element. `chunks_exact` pins the panel stride for the
/// compiler: the inner loop is bounds-check-free and vectorizes over the
/// `NR` lane dimension.
#[inline]
fn microkernel(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ap, bp) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let bp: &[f32; NR] = bp.try_into().unwrap_or(&[0.0; NR]);
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = ap[r];
            // Same sparsity skip as the reference kernel (and the same
            // NaN/∞ semantics: only exact ±0.0 left operands are skipped).
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in accr.iter_mut().zip(bp) {
                *o += av * bv;
            }
        }
    }
}

/// Runs the blocked GEMM over one span of output rows.
///
/// `span` holds rows `[row0, row0 + span.len()/n)` of the `m × n` output;
/// `row0` is always a multiple of [`MR`] (the span dispatch aligns blocks)
/// so A panels line up with the span. Loop order is column-panel outer /
/// row-panel inner: the `k × NR` B panel stays resident in L1 across the
/// whole row sweep while C lives entirely in registers until write-back.
fn gemm_span(
    span: &mut [f32],
    row0: usize,
    a_panels: &[f32],
    b_panels: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let span_rows = if n == 0 { 0 } else { span.len() / n };
    if span_rows == 0 || n == 0 {
        return;
    }
    debug_assert_eq!(row0 % MR, 0, "span must start on an MR boundary");
    #[cfg(target_arch = "x86_64")]
    let use_simd = simd::available();
    let panel_b_len = k * NR;
    let panel_a_len = k * MR;
    for jp in 0..n.div_ceil(NR) {
        let b_panel = &b_panels[jp * panel_b_len..(jp + 1) * panel_b_len];
        let j0 = jp * NR;
        let width = NR.min(n - j0);
        let mut i0 = 0usize;
        while i0 < span_rows {
            let ip = (row0 + i0) / MR;
            let a_panel = &a_panels[ip * panel_a_len..(ip + 1) * panel_a_len];
            let height = MR.min(span_rows - i0).min(m - (row0 + i0));
            let mut acc = [[0.0f32; NR]; MR];
            #[cfg(target_arch = "x86_64")]
            if use_simd {
                // SAFETY: `use_simd` witnessed AVX2 support; the panel
                // slices carry exactly k·MR / k·NR elements by construction.
                #[allow(unsafe_code)]
                unsafe {
                    simd::microkernel(a_panel, b_panel, &mut acc)
                };
            } else {
                microkernel(a_panel, b_panel, &mut acc);
            }
            #[cfg(not(target_arch = "x86_64"))]
            microkernel(a_panel, b_panel, &mut acc);
            for (r, accr) in acc.iter().take(height).enumerate() {
                let orow = &mut span[(i0 + r) * n + j0..(i0 + r) * n + j0 + width];
                orow.copy_from_slice(&accr[..width]);
            }
            i0 += MR;
        }
    }
}

/// Blocked GEMM into a fresh output tensor: `a_panels · b_panels → [m, n]`,
/// row-span partitioned across the execution pool.
pub(crate) fn gemm_packed(
    a_panels: &[f32],
    b_panels: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Tensor {
    let mut out = exec::take_buf_at("gemm.out", m * n);
    exec::pool().par_row_spans(&mut out, n.max(1), MR, 2 * k * n, |row0, span| {
        gemm_span(span, row0, a_panels, b_panels, m, k, n);
    });
    Tensor::from_vec(out, &[m, n])
}

/// Packs `a` on the fly (recycling the scratch through the buffer pool)
/// and runs the blocked GEMM against pre-packed B panels.
pub(crate) fn gemm_pack_lhs(a: &[f32], b_panels: &[f32], m: usize, k: usize, n: usize) -> Tensor {
    let mut a_panels = exec::take_buf_at("gemm.pack_lhs", m.div_ceil(MR).max(1) * k * MR);
    pack_lhs_into(&mut a_panels, a, m, k);
    let out = gemm_packed(&a_panels, b_panels, m, k, n);
    exec::recycle_buf(a_panels);
    out
}

impl Tensor {
    /// Matrix product against a pre-packed right-hand operand:
    /// `[m,k] × packed([k,n]) → [m,n]`.
    ///
    /// Bit-identical to `self.matmul(&b)` for the `b` the panels were
    /// packed from; use with [`PackedCache`] to pack inference constants
    /// once per parameter version.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2, `rhs` was not packed with a
    /// `pack_rhs*` constructor, or the inner dimensions differ.
    pub fn matmul_packed(&self, rhs: &PackedMatrix) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul_packed lhs must be rank-2");
        assert_eq!(
            rhs.kind(),
            PanelKind::Rhs,
            "matmul_packed needs Rhs panels (got {:?})",
            rhs.kind()
        );
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        assert_eq!(
            k,
            rhs.rows(),
            "matmul_packed inner dimension mismatch: {} vs packed {}×{}",
            self.shape(),
            rhs.rows(),
            rhs.cols()
        );
        gemm_pack_lhs(self.as_slice(), rhs.panels(), m, k, rhs.cols())
    }
}

/// Computes the MR-aligned panel offset of every batch member and the
/// total panel count: member `i`'s rows start at `offsets[i] · MR` in the
/// fused output, so each member occupies exactly the row panels its solo
/// pack would produce. Shared by the f32 and i8 batched entry points.
///
/// # Panics
///
/// Panics if any member is not rank-2 or its inner dimension is not `k`.
fn batch_panel_offsets(lhs: &[&Tensor], k: usize) -> (Vec<usize>, usize) {
    let mut offsets = Vec::with_capacity(lhs.len());
    let mut total = 0usize;
    for a in lhs {
        assert_eq!(
            a.shape().ndim(),
            2,
            "batched matmul lhs members must be rank-2"
        );
        assert_eq!(
            a.shape().dim(1),
            k,
            "batched matmul inner dimension mismatch: {} vs packed k={k}",
            a.shape()
        );
        offsets.push(total);
        total += a.shape().dim(0).div_ceil(MR);
    }
    (offsets, total)
}

/// Splits the fused `[panels·MR, n]` output back into one tensor per batch
/// member, dropping the zero padding rows between members.
fn split_batch_out(out: Tensor, lhs: &[&Tensor], offsets: &[usize], n: usize) -> Vec<Tensor> {
    let src = out.as_slice();
    let parts = lhs
        .iter()
        .zip(offsets)
        .map(|(a, &off)| {
            let m = a.shape().dim(0);
            let row0 = off * MR;
            let mut o = exec::take_buf_at("gemm.batch_split", m * n);
            o.copy_from_slice(&src[row0 * n..row0 * n + m * n]);
            Tensor::from_vec(o, &[m, n])
        })
        .collect();
    out.recycle();
    parts
}

/// Cross-session batched matrix product: every `lhs[i]` (`[m_i, k]`)
/// multiplies the *same* resident pre-packed right-hand panels in one
/// fused blocked-GEMM dispatch, instead of `lhs.len()` separate calls.
///
/// Each member's rows are packed at an MR-aligned offset of one shared
/// panel buffer, so its panels are byte-identical to the panels its solo
/// [`Tensor::matmul_packed`] call would build; the inter-member padding
/// rows pack as zero and are dropped when the fused output is split. An
/// output row's accumulation chain depends only on its own lhs row and the
/// B panels (ascending `k`, like the reference kernel), so every returned
/// tensor is **bit-identical** to the corresponding sequential
/// `lhs[i].matmul_packed(rhs)` — batching can change throughput, never
/// results. This is the serving layer's perf core: one dispatch, one
/// scratch round-trip and one resident B panel set amortized over all
/// sessions.
///
/// # Panics
///
/// Panics if `rhs` was not packed with a `pack_rhs*` constructor, or any
/// member is not rank-2 with inner dimension `rhs.rows()`.
pub fn matmul_packed_batched(lhs: &[&Tensor], rhs: &PackedMatrix) -> Vec<Tensor> {
    assert_eq!(
        rhs.kind(),
        PanelKind::Rhs,
        "matmul_packed_batched needs Rhs panels (got {:?})",
        rhs.kind()
    );
    let (k, n) = (rhs.rows(), rhs.cols());
    let (offsets, total_panels) = batch_panel_offsets(lhs, k);
    if total_panels == 0 {
        return lhs
            .iter()
            .map(|a| Tensor::zeros(&[a.shape().dim(0), n]))
            .collect();
    }
    let m_pad = total_panels * MR;
    let mut a_panels = exec::take_buf_at("gemm.batch_lhs", total_panels * k * MR);
    for (a, &off) in lhs.iter().zip(&offsets) {
        let m = a.shape().dim(0);
        if m == 0 {
            continue;
        }
        let panels = m.div_ceil(MR);
        pack_lhs_into(
            &mut a_panels[off * k * MR..(off + panels) * k * MR],
            a.as_slice(),
            m,
            k,
        );
    }
    let out = gemm_packed(&a_panels, rhs.panels(), m_pad, k, n);
    exec::recycle_buf(a_panels);
    split_batch_out(out, lhs, &offsets, n)
}

impl PackedMatrix {
    /// Matrix product with `self` as a pre-packed *left* operand:
    /// `packed([m,k]) × [k,n] → [m,n]`.
    ///
    /// This is the convolution shape: the `[outC, C·k·k]` weight is the
    /// constant left operand of the im2col GEMM. Bit-identical to
    /// `w.matmul(&rhs)` for the `w` the panels were packed from.
    ///
    /// # Panics
    ///
    /// Panics if `self` was not packed with [`PackedMatrix::pack_lhs`],
    /// `rhs` is not rank-2, or the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.kind(),
            PanelKind::Lhs,
            "PackedMatrix::matmul needs Lhs panels (got {:?})",
            self.kind()
        );
        assert_eq!(rhs.shape().ndim(), 2, "matmul rhs must be rank-2");
        let (k, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        assert_eq!(
            self.cols(),
            k,
            "matmul inner dimension mismatch: packed {}×{} vs {}",
            self.rows(),
            self.cols(),
            rhs.shape()
        );
        let mut b_panels = exec::take_buf_at("gemm.pack_rhs", n.div_ceil(NR).max(1) * k * NR);
        pack_rhs_into(&mut b_panels, rhs.as_slice(), k, n);
        let out = gemm_packed(self.panels(), &b_panels, self.rows(), k, n);
        exec::recycle_buf(b_panels);
        out
    }

    /// Implicit-GEMM convolution forward: `self · im2col(input, spec)` with
    /// `self` a pre-packed `[outC, C·k·k]` left operand, producing the
    /// `[outC, outH·outW]` response matrix — without ever materializing the
    /// im2col patch matrix. The column panels are filled straight from the
    /// image by [`pack_rhs_im2col_into`]; since packing is a pure value
    /// copy, the result is bit-identical to
    /// `self.matmul(&im2col(input, spec))` at any pool width, while the
    /// peak scratch drops by the whole patch-matrix footprint.
    ///
    /// # Panics
    ///
    /// Panics if `self` was not packed with a `pack_lhs*` constructor, if
    /// `input` is not the `[C, H, W]` tensor `spec` describes, or if the
    /// packed `k` extent differs from `spec.patch_rows()`.
    pub fn matmul_im2col(&self, input: &Tensor, spec: &Im2ColSpec) -> Tensor {
        assert_eq!(
            self.kind(),
            PanelKind::Lhs,
            "matmul_im2col needs Lhs panels (got {:?})",
            self.kind()
        );
        assert_eq!(
            input.shape().dims(),
            &[spec.channels, spec.height, spec.width],
            "matmul_im2col input does not match spec"
        );
        let (k, n) = (spec.patch_rows(), spec.patch_cols());
        assert_eq!(
            self.cols(),
            k,
            "matmul_im2col inner dimension mismatch: packed {}×{} vs {} patch rows",
            self.rows(),
            self.cols(),
            k
        );
        let mut b_panels = exec::take_buf_at("gemm.pack_im2col", n.div_ceil(NR).max(1) * k * NR);
        pack_rhs_im2col_into(&mut b_panels, input.as_slice(), spec);
        let out = gemm_packed(self.panels(), &b_panels, self.rows(), k, n);
        exec::recycle_buf(b_panels);
        out
    }
}

impl Tensor {
    /// Implicit-GEMM weight gradient: `self · im2col(input, spec)ᵀ`,
    /// `[m, outH·outW] × [outH·outW, C·k·k] → [m, C·k·k]` — the
    /// `dW = g · colsᵀ` product of the convolution backward pass, computed
    /// without materializing either the patch matrix or its transpose. The
    /// transposed column panels are filled straight from the image by
    /// [`pack_rhs_im2col_t_into`], so the result is bit-identical to
    /// `self.matmul(&im2col(input, spec).transpose())` at any pool width.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2 with `spec.patch_cols()` columns, or
    /// if `input` is not the `[C, H, W]` tensor `spec` describes.
    pub fn matmul_at_im2col(&self, input: &Tensor, spec: &Im2ColSpec) -> Tensor {
        assert_eq!(
            self.shape().ndim(),
            2,
            "matmul_at_im2col lhs must be rank-2"
        );
        assert_eq!(
            input.shape().dims(),
            &[spec.channels, spec.height, spec.width],
            "matmul_at_im2col input does not match spec"
        );
        let (m, l) = (self.shape().dim(0), self.shape().dim(1));
        assert_eq!(
            l,
            spec.patch_cols(),
            "matmul_at_im2col inner dimension mismatch: {} vs {} patch cols",
            self.shape(),
            spec.patch_cols()
        );
        let n = spec.patch_rows();
        let mut b_panels = exec::take_buf_at("gemm.pack_im2col_t", n.div_ceil(NR).max(1) * l * NR);
        pack_rhs_im2col_t_into(&mut b_panels, input.as_slice(), spec);
        let out = gemm_pack_lhs(self.as_slice(), &b_panels, m, l, n);
        exec::recycle_buf(b_panels);
        out
    }
}

// ---------------------------------------------------------------------------
// Int8 inference path: i8×i8→i32 panels, kernels and per-channel rescale.
// ---------------------------------------------------------------------------
//
// The quantized GEMM mirrors the f32 path one-for-one — same MR×NR register
// tiles, same panel-per-worker dispatch — but stores panels as `i8` with the
// k extent padded to an *even* length (the kernels consume depth *pairs*,
// two multiply-accumulates per `_mm256_madd_epi16` lane):
//
// * a B column panel keeps the f32 path's plain p-major layout (`b[p][j]`
//   at `p·NR + j`), so the RHS and im2col packers stay contiguous copies;
//   the AVX2 kernel interleaves the two depth rows of a pair in-register
//   (`punpcklbw`/`punpckhbw`) into the pair-of-i16 shape `madd` wants;
// * an A row panel stores, per pair `pp`, the 8 bytes
//   `[a[r][2pp], a[r][2pp+1]]` for ascending row `r`, so one 64-bit load
//   plus a sign-extension yields all four rows' pairs and a `vpermd`
//   broadcast feeds each row's `madd`.
//
// Bit-identity here is *stronger* than in the f32 path: i8×i8 products and
// their i32 sums are exact (no rounding exists to reorder), so the scalar
// reference kernel, the AVX2 kernel and any pool width agree bit-for-bit by
// construction. The padding pairs multiply as zero and add nothing. The i32
// accumulator cannot overflow below k ≈ 1.3·10⁵ (k·127² ≤ i32::MAX), far
// beyond any reduction in this workspace; `_mm256_madd_epi16`'s only
// saturating case (both pair operands −32768) is unreachable from i8 inputs.
//
// Scales are symmetric: activations quantize per-tensor on the fly, weights
// per output channel at pack time (the channel axis is never the contracted
// axis, so the scale factors out of the integer sum exactly). The i32
// accumulator rescales to f32 once at write-back.

/// The k extent padded to an even number of depths (the pair layout).
#[inline]
fn kpad(k: usize) -> usize {
    k + (k & 1)
}

/// Symmetric per-tensor quantization to i8: `scale = max|x| / 127`
/// (1.0 for an all-zero slice), values rounded to nearest and clamped to
/// `[-127, 127]`.
pub(crate) fn quantize_slice(src: &[f32]) -> (Vec<i8>, f32) {
    let max = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
    let inv = 1.0 / scale;
    let q = src.iter().map(|&v| quantize_one(v, inv)).collect();
    (q, scale)
}

/// Rounds `v · inv` to the nearest integer (half away from zero — the
/// same rule as `f32::round`, but via a truncating cast, which
/// vectorizes) and clamps to the symmetric i8 range.
#[inline]
fn quantize_one(v: f32, inv: f32) -> i8 {
    let r = v * inv;
    let rounded = if r >= 0.0 {
        (r + 0.5) as i32
    } else {
        (r - 0.5) as i32
    };
    rounded.clamp(-127, 127) as i8
}

/// Symmetric per-row quantization of a row-major `rows × cols` matrix: one
/// scale per row (the per-output-channel weight scheme).
fn quantize_rows(src: &[f32], rows: usize, cols: usize) -> (Vec<i8>, Vec<f32>) {
    let mut q = vec![0i8; rows * cols];
    let mut scales = vec![1.0f32; rows];
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max > 0.0 {
            let scale = max / 127.0;
            scales[r] = scale;
            let inv = 1.0 / scale;
            for (o, &v) in q[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *o = (v * inv).round().clamp(-127.0, 127.0) as i8;
            }
        }
    }
    (q, scales)
}

/// A weight matrix quantized to i8 and repacked into pair-interleaved
/// micro-kernel panels, with one symmetric scale per output channel
/// (per column for Rhs panels, per row for Lhs panels).
///
/// This is the quantized sibling of [`PackedMatrix`]: `Linear` and `Conv2d`
/// build one per parameter version through [`PackedCache`], so weights are
/// quantized and packed once per update, never per frame.
#[derive(Debug, Clone, PartialEq)]
pub struct QPackedMatrix {
    data: Vec<i8>,
    /// Logical row count of the packed matrix (`m` for Lhs, `k` for Rhs).
    rows: usize,
    /// Logical column count (`k` for Lhs, `n` for Rhs).
    cols: usize,
    kind: PanelKind,
    /// One scale per output channel: `cols` entries for Rhs panels, `rows`
    /// entries for Lhs panels.
    scales: Vec<f32>,
}

impl QPackedMatrix {
    /// Quantizes an `[n, k]` weight per row and packs its *transpose* into
    /// column panels — the `Linear` shape (`x · Wᵀ`), with the row scales
    /// becoming per-column output scales.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank-2.
    pub fn pack_rhs_transposed(w: &Tensor) -> Self {
        assert_eq!(w.shape().ndim(), 2, "pack_rhs_transposed requires rank-2");
        let (n, k) = (w.shape().dim(0), w.shape().dim(1));
        let (q, scales) = quantize_rows(w.as_slice(), n, k);
        let mut data = vec![0i8; n.div_ceil(NR).max(1) * kpad(k) * NR];
        pack_rhs_transposed_q_into(&mut data, &q, n, k);
        Self {
            data,
            rows: k,
            cols: n,
            kind: PanelKind::Rhs,
            scales,
        }
    }

    /// Quantizes an `[m, k]` weight per row and packs it into row panels —
    /// the convolution shape (`W · im2col`), with the row scales staying
    /// per-row output scales.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank-2.
    pub fn pack_lhs(w: &Tensor) -> Self {
        assert_eq!(w.shape().ndim(), 2, "pack_lhs requires rank-2");
        let (m, k) = (w.shape().dim(0), w.shape().dim(1));
        let (q, scales) = quantize_rows(w.as_slice(), m, k);
        let mut data = vec![0i8; m.div_ceil(MR).max(1) * kpad(k) * MR];
        pack_lhs_q_into(&mut data, &q, m, k);
        Self {
            data,
            rows: m,
            cols: k,
            kind: PanelKind::Lhs,
            scales,
        }
    }

    /// Logical row count (`m` for Lhs panels, `k` for Rhs panels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count (`k` for Lhs panels, `n` for Rhs panels).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Which GEMM operand the panels were laid out for.
    pub fn kind(&self) -> PanelKind {
        self.kind
    }

    /// The per-output-channel weight scales packed with the panels.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The packed i8 panel storage (pair-interleaved; see above).
    pub(crate) fn panels(&self) -> &[i8] {
        &self.data
    }
}

/// Packs row-major i8 `b` (`k × n`) into p-major column panels — the same
/// copy pattern as [`pack_rhs_into`], with the depth extent padded to
/// `kpad(k)`. `data` must be zeroed and sized `⌈n/NR⌉·kpad(k)·NR`.
pub(crate) fn pack_rhs_q_into(data: &mut [i8], src: &[i8], k: usize, n: usize) {
    let kp = kpad(k);
    for jp in 0..n.div_ceil(NR) {
        let j0 = jp * NR;
        let width = NR.min(n - j0);
        let panel = &mut data[jp * kp * NR..(jp + 1) * kp * NR];
        for (p, dst) in panel.chunks_exact_mut(NR).take(k).enumerate() {
            dst[..width].copy_from_slice(&src[p * n + j0..p * n + j0 + width]);
        }
    }
}

/// Packs the transpose of row-major i8 `w` (`n × k`) into p-major column
/// panels — the quantized sibling of [`pack_rhs_transposed_into`], with
/// the depth extent padded to `kpad(k)`. `data` must be zeroed and sized
/// `⌈n/NR⌉·kpad(k)·NR`.
pub(crate) fn pack_rhs_transposed_q_into(data: &mut [i8], src: &[i8], n: usize, k: usize) {
    let kp = kpad(k);
    for jp in 0..n.div_ceil(NR) {
        let j0 = jp * NR;
        let width = NR.min(n - j0);
        let panel = &mut data[jp * kp * NR..(jp + 1) * kp * NR];
        for (p, dst) in panel.chunks_exact_mut(NR).take(k).enumerate() {
            // Column j of wᵀ is row j of w: lane s reads w[j0+s][p].
            for (s, v) in dst[..width].iter_mut().enumerate() {
                *v = src[(j0 + s) * k + p];
            }
        }
    }
}

/// Packs row-major i8 `a` (`m × k`) into pair-interleaved row panels.
/// `data` must be zeroed and sized `⌈m/MR⌉·kpad(k)·MR`.
pub(crate) fn pack_lhs_q_into(data: &mut [i8], src: &[i8], m: usize, k: usize) {
    let kp = kpad(k);
    for ip in 0..m.div_ceil(MR) {
        let i0 = ip * MR;
        let height = MR.min(m - i0);
        let panel = &mut data[ip * kp * MR..(ip + 1) * kp * MR];
        for p in 0..k {
            let base = (p / 2) * (2 * MR) + (p & 1);
            for r in 0..height {
                panel[base + 2 * r] = src[(i0 + r) * k + p];
            }
        }
    }
}

/// Packs the im2col patch matrix of a quantized `[C, H, W]` image into
/// p-major column panels, straight from the i8 image — the quantized twin
/// of [`pack_rhs_im2col_into`], reusing the same precomputed in-bounds
/// run bounds for the strided gather (only the element type and the
/// even-padded depth extent differ). Out-of-bounds taps keep the buffer's
/// pre-zeroed lanes, which is exactly the zero padding: 0 maps to 0 under
/// symmetric quantization. `data` must be zeroed and sized
/// `⌈outH·outW/NR⌉·kpad(C·k²)·NR`.
pub(crate) fn pack_rhs_im2col_q_into(data: &mut [i8], src: &[i8], spec: &Im2ColSpec) {
    let rows = spec.patch_rows();
    let cols = spec.patch_cols();
    let ow = spec.out_width();
    let (h, w) = (spec.height, spec.width);
    let stride = spec.stride;
    let panel_len = kpad(rows) * NR;
    // One task per column panel, same width-invariance argument as the f32
    // twin: panels are disjoint chunks and every lane is a pure function of
    // (panel, p, lane).
    exec::pool().par_rows(data, panel_len, 2 * panel_len, |jp, panel| {
        let j0 = jp * NR;
        let width = NR.min(cols - j0);
        for (p, dst) in panel.chunks_exact_mut(NR).take(rows).enumerate() {
            let (c, ki, kj) = spec.tap(p);
            let ib = (ki * spec.dilation) as isize - spec.padding as isize;
            let jb = (kj * spec.dilation) as isize - spec.padding as isize;
            let plane = &src[c * h * w..(c + 1) * h * w];
            // Lanes sharing an output row form a run whose input reads
            // advance by `stride`.
            let mut s = 0;
            while s < width {
                let (oi, oj) = ((j0 + s) / ow, (j0 + s) % ow);
                let run = (ow - oj).min(width - s);
                let ii = (oi * stride) as isize + ib;
                if 0 <= ii && ii < h as isize {
                    let row = &plane[ii as usize * w..(ii as usize + 1) * w];
                    let jj = (oj * stride) as isize + jb;
                    if stride == 1 {
                        // Unit stride: the in-bounds middle of the run is one
                        // contiguous copy from the input row.
                        let lo = (-jj).clamp(0, run as isize) as usize;
                        let hi = (w as isize - jj).clamp(0, run as isize) as usize;
                        if hi > lo {
                            dst[s + lo..s + hi].copy_from_slice(
                                &row[(jj + lo as isize) as usize..(jj + hi as isize) as usize],
                            );
                        }
                    } else {
                        // Strided gather through the precomputed in-bounds
                        // lane range [lo, hi): lane t reads column
                        // jj + t·stride (the PR-7 run-bounds trick).
                        let lo = if jj >= 0 {
                            0
                        } else {
                            ((-jj) as usize).div_ceil(stride).min(run)
                        };
                        let hi = if (w as isize) > jj {
                            ((w as isize - jj) as usize).div_ceil(stride).min(run)
                        } else {
                            0
                        };
                        if hi > lo {
                            let mut src_j = (jj + (lo * stride) as isize) as usize;
                            for v in &mut dst[s + lo..s + hi] {
                                *v = row[src_j];
                                src_j += stride;
                            }
                        }
                    }
                }
                s += run;
            }
        }
    });
}

/// The scalar i8 reference micro-kernel: accumulates the full-`k` product
/// of one pair-interleaved A panel and one pair-interleaved B panel into
/// the `i32` tile. Integer arithmetic is exact, so this kernel defines the
/// bit pattern every other i8 kernel (and every pool width) must reproduce.
#[inline]
fn microkernel_i8(a_panel: &[i8], b_panel: &[i8], acc: &mut [[i32; NR]; MR]) {
    for (ap, bp) in a_panel
        .chunks_exact(2 * MR)
        .zip(b_panel.chunks_exact(2 * NR))
    {
        // The two p-major depth rows of this pair.
        let (b0, b1) = bp.split_at(NR);
        for (r, accr) in acc.iter_mut().enumerate() {
            let a0 = ap[2 * r] as i32;
            let a1 = ap[2 * r + 1] as i32;
            // Skipping an all-zero pair is a pure speed heuristic: unlike
            // the f32 kernel's zero-skip, it cannot change the (exact)
            // integer result.
            if a0 == 0 && a1 == 0 {
                continue;
            }
            for (j, o) in accr.iter_mut().enumerate() {
                *o += a0 * b0[j] as i32 + a1 * b1[j] as i32;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod simd_i8;

/// Computes one MR×NR i32 tile from the packed panels, dispatching to
/// the best i8 kernel tier the caller witnessed (`simd_i8::level()`):
/// 2 = VNNI, 1 = AVX2, else the scalar reference. Every tier computes
/// the same exact integers, so dispatch can never change an output.
#[inline]
fn qgemm_tile(a_panel: &[i8], b_panel: &[i8], simd_level: u8) -> [[i32; NR]; MR] {
    let mut acc = [[0i32; NR]; MR];
    #[cfg(target_arch = "x86_64")]
    {
        if simd_level >= 2 {
            // SAFETY: level ≥ 2 witnessed avx512vnni+avx512vl (and avx2)
            // via `simd_i8::level`; the panel slices carry exactly kp·MR /
            // kp·NR elements by construction and the kernel only uses
            // unaligned loads/stores.
            #[allow(unsafe_code)]
            unsafe {
                simd_i8::microkernel_i8_vnni(a_panel, b_panel, &mut acc)
            };
            return acc;
        } else if simd_level == 1 {
            // SAFETY: level 1 witnessed AVX2 via `simd_i8::level`; the
            // panel slices carry exactly kp·MR / kp·NR elements by
            // construction and the kernel only uses unaligned
            // loads/stores.
            #[allow(unsafe_code)]
            unsafe {
                simd_i8::microkernel_i8(a_panel, b_panel, &mut acc)
            };
            return acc;
        }
    }
    let _ = simd_level;
    microkernel_i8(a_panel, b_panel, &mut acc);
    acc
}

/// How the quantized GEMM rescales its i32 accumulators to f32 at
/// write-back: `acc · act_scale · w_scale[channel]`, with the weight's
/// channel axis being either the output columns (Rhs-packed weights) or
/// the output rows (Lhs-packed weights).
enum QRescale<'a> {
    /// Weight scales indexed by output column (`Linear`: `x · Wᵀ`).
    PerCol { act: f32, w: &'a [f32] },
    /// Weight scales indexed by output row (`Conv2d`: `W · im2col`).
    PerRow { act: f32, w: &'a [f32] },
    /// Weight scales indexed by output column, activation scale indexed by
    /// output *row* — the cross-session batched `Linear` shape, where each
    /// session's activations were quantized with their own per-tensor
    /// scale. Write-back evaluates `acc · (acts[row] · w[col])`, the exact
    /// float expression [`QRescale::PerCol`] uses, so a batched row is
    /// bit-identical to the same row rescaled solo.
    PerColRowAct { acts: &'a [f32], w: &'a [f32] },
}

/// Runs the quantized blocked GEMM over one span of output rows,
/// rescaling each i32 accumulator to f32 at write-back. Same span
/// geometry as [`gemm_span`]; `kp` is the pair-padded depth.
fn qgemm_span(
    span: &mut [f32],
    row0: usize,
    a_panels: &[i8],
    b_panels: &[i8],
    m: usize,
    kp: usize,
    n: usize,
    rescale: &QRescale,
) {
    let span_rows = if n == 0 { 0 } else { span.len() / n };
    if span_rows == 0 {
        return;
    }
    debug_assert_eq!(row0 % MR, 0, "span must start on an MR boundary");
    #[cfg(target_arch = "x86_64")]
    let simd_level = simd_i8::level();
    #[cfg(not(target_arch = "x86_64"))]
    let simd_level = 0u8;
    let panel_b_len = kp * NR;
    let panel_a_len = kp * MR;
    for jp in 0..n.div_ceil(NR) {
        let b_panel = &b_panels[jp * panel_b_len..(jp + 1) * panel_b_len];
        let j0 = jp * NR;
        let width = NR.min(n - j0);
        let mut i0 = 0usize;
        while i0 < span_rows {
            let ip = (row0 + i0) / MR;
            let a_panel = &a_panels[ip * panel_a_len..(ip + 1) * panel_a_len];
            let height = MR.min(span_rows - i0).min(m - (row0 + i0));
            let acc = qgemm_tile(a_panel, b_panel, simd_level);
            for (r, accr) in acc.iter().take(height).enumerate() {
                let orow = &mut span[(i0 + r) * n + j0..(i0 + r) * n + j0 + width];
                match rescale {
                    QRescale::PerCol { act, w } => {
                        for (s, o) in orow.iter_mut().enumerate() {
                            *o = accr[s] as f32 * (act * w[j0 + s]);
                        }
                    }
                    QRescale::PerRow { act, w } => {
                        let factor = act * w[row0 + i0 + r];
                        for (s, o) in orow.iter_mut().enumerate() {
                            *o = accr[s] as f32 * factor;
                        }
                    }
                    QRescale::PerColRowAct { acts, w } => {
                        let act = acts[row0 + i0 + r];
                        for (s, o) in orow.iter_mut().enumerate() {
                            *o = accr[s] as f32 * (act * w[j0 + s]);
                        }
                    }
                }
            }
            i0 += MR;
        }
    }
}

/// Quantized blocked GEMM into a fresh f32 tensor, row-span partitioned
/// across the execution pool exactly like [`gemm_packed`].
fn qgemm_packed(
    a_panels: &[i8],
    b_panels: &[i8],
    m: usize,
    k: usize,
    n: usize,
    rescale: QRescale<'_>,
) -> Tensor {
    let kp = kpad(k);
    let rescale = &rescale;
    let mut out = exec::take_buf_at("qgemm.out", m * n);
    exec::pool().par_row_spans(&mut out, n.max(1), MR, k * n, |row0, span| {
        qgemm_span(span, row0, a_panels, b_panels, m, kp, n, rescale);
    });
    Tensor::from_vec(out, &[m, n])
}

/// Blocked i8×i8→i32 GEMM over row-major operands, returning the raw
/// integer accumulators: `a (m×k) · b (k×n) → [m·n]` in row-major order.
///
/// This is the exact integer product the modeled systolic array executes
/// (`solo-hw` delegates its functional model here) and the backend behind
/// `solo-nn`'s `qmatmul`; the f32 entry points rescale the same
/// accumulators at write-back instead of materializing them.
///
/// # Panics
///
/// Panics if the operand lengths do not match `m·k` / `k·n`.
pub fn qgemm_i8(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "qgemm_i8 lhs length mismatch");
    assert_eq!(b.len(), k * n, "qgemm_i8 rhs length mismatch");
    let kp = kpad(k);
    let mut a_panels = vec![0i8; m.div_ceil(MR).max(1) * kp * MR];
    pack_lhs_q_into(&mut a_panels, a, m, k);
    let mut b_panels = vec![0i8; n.div_ceil(NR).max(1) * kp * NR];
    pack_rhs_q_into(&mut b_panels, b, k, n);
    let mut out = vec![0i32; m * n];
    exec::pool().par_row_spans(&mut out, n.max(1), MR, k * n, |row0, span| {
        qgemm_span_i32(span, row0, &a_panels, &b_panels, m, kp, n);
    });
    out
}

/// Integer-output sibling of [`qgemm_span`]: writes the raw i32 tile.
fn qgemm_span_i32(
    span: &mut [i32],
    row0: usize,
    a_panels: &[i8],
    b_panels: &[i8],
    m: usize,
    kp: usize,
    n: usize,
) {
    let span_rows = if n == 0 { 0 } else { span.len() / n };
    if span_rows == 0 {
        return;
    }
    debug_assert_eq!(row0 % MR, 0, "span must start on an MR boundary");
    #[cfg(target_arch = "x86_64")]
    let simd_level = simd_i8::level();
    #[cfg(not(target_arch = "x86_64"))]
    let simd_level = 0u8;
    let panel_b_len = kp * NR;
    let panel_a_len = kp * MR;
    for jp in 0..n.div_ceil(NR) {
        let b_panel = &b_panels[jp * panel_b_len..(jp + 1) * panel_b_len];
        let j0 = jp * NR;
        let width = NR.min(n - j0);
        let mut i0 = 0usize;
        while i0 < span_rows {
            let ip = (row0 + i0) / MR;
            let a_panel = &a_panels[ip * panel_a_len..(ip + 1) * panel_a_len];
            let height = MR.min(span_rows - i0).min(m - (row0 + i0));
            let acc = qgemm_tile(a_panel, b_panel, simd_level);
            for (r, accr) in acc.iter().take(height).enumerate() {
                let orow = &mut span[(i0 + r) * n + j0..(i0 + r) * n + j0 + width];
                orow.copy_from_slice(&accr[..width]);
            }
            i0 += MR;
        }
    }
}

impl Tensor {
    /// Quantized matrix product against pre-quantized, pre-packed weight
    /// panels: `[m,k] × qpacked([k,n]) → [m,n]` in f32.
    ///
    /// `self` is quantized symmetrically per-tensor on the fly; the weight
    /// was quantized per output column at pack time. The i32 accumulators
    /// rescale to f32 at write-back, so the result approximates
    /// `self.matmul_packed(..)` to quantization accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2, `rhs` was not packed with
    /// [`QPackedMatrix::pack_rhs_transposed`], or the inner dimensions
    /// differ.
    pub fn qmatmul_packed(&self, rhs: &QPackedMatrix) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "qmatmul_packed lhs must be rank-2");
        assert_eq!(
            rhs.kind(),
            PanelKind::Rhs,
            "qmatmul_packed needs Rhs panels (got {:?})",
            rhs.kind()
        );
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        assert_eq!(
            k,
            rhs.rows(),
            "qmatmul_packed inner dimension mismatch: {} vs packed {}×{}",
            self.shape(),
            rhs.rows(),
            rhs.cols()
        );
        let (qa, act) = quantize_slice(self.as_slice());
        let mut a_panels = vec![0i8; m.div_ceil(MR).max(1) * kpad(k) * MR];
        pack_lhs_q_into(&mut a_panels, &qa, m, k);
        qgemm_packed(
            &a_panels,
            rhs.panels(),
            m,
            k,
            rhs.cols(),
            QRescale::PerCol {
                act,
                w: rhs.scales(),
            },
        )
    }
}

/// Cross-session batched quantized matrix product: the i8 twin of
/// [`matmul_packed_batched`]. Every member's activations quantize with
/// their **own** per-tensor scale — exactly the scale the sequential
/// [`Tensor::qmatmul_packed`] call computes — and the fused write-back
/// rescales each output row by its member's activation scale
/// ([`QRescale::PerColRowAct`]). Integer accumulation is exact and the
/// rescale expression matches the solo path term-for-term, so every
/// returned tensor is bit-identical to the corresponding sequential call,
/// at any pool width and kernel tier.
///
/// # Panics
///
/// Panics if `rhs` was not packed with
/// [`QPackedMatrix::pack_rhs_transposed`], or any member is not rank-2
/// with inner dimension `rhs.rows()`.
pub fn qmatmul_packed_batched(lhs: &[&Tensor], rhs: &QPackedMatrix) -> Vec<Tensor> {
    assert_eq!(
        rhs.kind(),
        PanelKind::Rhs,
        "qmatmul_packed_batched needs Rhs panels (got {:?})",
        rhs.kind()
    );
    let (k, n) = (rhs.rows(), rhs.cols());
    let (offsets, total_panels) = batch_panel_offsets(lhs, k);
    if total_panels == 0 {
        return lhs
            .iter()
            .map(|a| Tensor::zeros(&[a.shape().dim(0), n]))
            .collect();
    }
    let m_pad = total_panels * MR;
    let kp = kpad(k);
    let mut a_panels = vec![0i8; total_panels * kp * MR];
    // Padding rows rescale by 1.0 · w, but their exact-zero accumulators
    // make the product 0.0 regardless; the rows are dropped at the split.
    let mut row_acts = vec![1.0f32; m_pad];
    for (a, &off) in lhs.iter().zip(&offsets) {
        let m = a.shape().dim(0);
        if m == 0 {
            continue;
        }
        let panels = m.div_ceil(MR);
        let (qa, act) = quantize_slice(a.as_slice());
        pack_lhs_q_into(
            &mut a_panels[off * kp * MR..(off + panels) * kp * MR],
            &qa,
            m,
            k,
        );
        row_acts[off * MR..off * MR + m].fill(act);
    }
    let out = qgemm_packed(
        &a_panels,
        rhs.panels(),
        m_pad,
        k,
        n,
        QRescale::PerColRowAct {
            acts: &row_acts,
            w: rhs.scales(),
        },
    );
    split_batch_out(out, lhs, &offsets, n)
}

impl QPackedMatrix {
    /// Quantized matrix product with `self` as a pre-packed *left*
    /// operand: `qpacked([m,k]) × [k,n] → [m,n]` in f32. The convolution
    /// shape; `rhs` quantizes per-tensor on the fly.
    ///
    /// # Panics
    ///
    /// Panics if `self` was not packed with [`QPackedMatrix::pack_lhs`],
    /// `rhs` is not rank-2, or the inner dimensions differ.
    pub fn qmatmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.kind(),
            PanelKind::Lhs,
            "QPackedMatrix::qmatmul needs Lhs panels (got {:?})",
            self.kind()
        );
        assert_eq!(rhs.shape().ndim(), 2, "qmatmul rhs must be rank-2");
        let (k, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        assert_eq!(
            self.cols(),
            k,
            "qmatmul inner dimension mismatch: packed {}×{} vs {}",
            self.rows(),
            self.cols(),
            rhs.shape()
        );
        let (qb, act) = quantize_slice(rhs.as_slice());
        let mut b_panels = vec![0i8; n.div_ceil(NR).max(1) * kpad(k) * NR];
        pack_rhs_q_into(&mut b_panels, &qb, k, n);
        qgemm_packed(
            self.panels(),
            &b_panels,
            self.rows(),
            k,
            n,
            QRescale::PerRow {
                act,
                w: self.scales(),
            },
        )
    }

    /// Quantized implicit-GEMM convolution forward:
    /// `self · im2col(input, spec)` with the patch matrix packed straight
    /// from the quantized image by [`pack_rhs_im2col_q_into`] — the
    /// quantized twin of [`PackedMatrix::matmul_im2col`].
    ///
    /// # Panics
    ///
    /// Panics if `self` was not packed with [`QPackedMatrix::pack_lhs`],
    /// if `input` is not the `[C, H, W]` tensor `spec` describes, or if
    /// the packed `k` extent differs from `spec.patch_rows()`.
    pub fn qmatmul_im2col(&self, input: &Tensor, spec: &Im2ColSpec) -> Tensor {
        assert_eq!(
            self.kind(),
            PanelKind::Lhs,
            "qmatmul_im2col needs Lhs panels (got {:?})",
            self.kind()
        );
        assert_eq!(
            input.shape().dims(),
            &[spec.channels, spec.height, spec.width],
            "qmatmul_im2col input does not match spec"
        );
        let (k, n) = (spec.patch_rows(), spec.patch_cols());
        assert_eq!(
            self.cols(),
            k,
            "qmatmul_im2col inner dimension mismatch: packed {}×{} vs {} patch rows",
            self.rows(),
            self.cols(),
            k
        );
        let (qimg, act) = quantize_slice(input.as_slice());
        let mut b_panels = vec![0i8; n.div_ceil(NR).max(1) * kpad(k) * NR];
        pack_rhs_im2col_q_into(&mut b_panels, &qimg, spec);
        qgemm_packed(
            self.panels(),
            &b_panels,
            self.rows(),
            k,
            n,
            QRescale::PerRow {
                act,
                w: self.scales(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_rhs_round_trips_values() {
        let b = Tensor::arange(6).reshape(&[2, 3]); // k=2, n=3 (< NR: one padded panel)
        let p = PackedMatrix::pack_rhs(&b);
        assert_eq!(p.rows(), 2);
        assert_eq!(p.cols(), 3);
        // Panel is p-major: row 0 then row 1, each padded to NR.
        assert_eq!(&p.panels()[..3], &[0.0, 1.0, 2.0]);
        assert_eq!(&p.panels()[NR..NR + 3], &[3.0, 4.0, 5.0]);
        assert!(p.panels()[3..NR].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pack_rhs_transposed_matches_pack_of_transpose() {
        let w = Tensor::arange(12).reshape(&[4, 3]);
        let direct = PackedMatrix::pack_rhs_transposed(&w);
        let via_transpose = PackedMatrix::pack_rhs(&w.transpose());
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn pack_lhs_transposed_matches_pack_of_transpose() {
        let w = Tensor::arange(12).reshape(&[3, 4]);
        let direct = PackedMatrix::pack_lhs_transposed(&w);
        let via_transpose = PackedMatrix::pack_lhs(&w.transpose());
        assert_eq!(direct, via_transpose);
    }

    fn test_spec() -> Im2ColSpec {
        Im2ColSpec {
            channels: 2,
            height: 6,
            width: 5,
            kernel: 3,
            stride: 2,
            padding: 1,
            dilation: 1,
        }
    }

    #[test]
    fn pack_rhs_im2col_matches_pack_of_materialized_matrix() {
        let spec = test_spec();
        let img = Tensor::arange(2 * 6 * 5).reshape(&[2, 6, 5]);
        let cols = crate::im2col(&img, &spec);
        let (k, n) = (spec.patch_rows(), spec.patch_cols());
        let mut want = vec![0.0f32; n.div_ceil(NR).max(1) * k * NR];
        pack_rhs_into(&mut want, cols.as_slice(), k, n);
        let mut got = vec![0.0f32; want.len()];
        pack_rhs_im2col_into(&mut got, img.as_slice(), &spec);
        assert_eq!(got, want);
        // And the transposed packing against the materialized transpose.
        let cols_t = cols.transpose();
        let mut want_t = vec![0.0f32; k.div_ceil(NR).max(1) * n * NR];
        pack_rhs_into(&mut want_t, cols_t.as_slice(), n, k);
        let mut got_t = vec![0.0f32; want_t.len()];
        pack_rhs_im2col_t_into(&mut got_t, img.as_slice(), &spec);
        assert_eq!(got_t, want_t);
    }

    #[test]
    fn strided_gather_fast_path_matches_materialized_pack() {
        // Sweep stride/dilation/padding combinations so the precomputed
        // in-bounds lane range is exercised at both edges of every run.
        for (stride, dilation, padding) in [
            (2, 1, 0),
            (2, 2, 1),
            (3, 1, 2),
            (3, 2, 3),
            (2, 3, 2),
            (4, 1, 1),
        ] {
            let spec = Im2ColSpec {
                channels: 2,
                height: 9,
                width: 7,
                kernel: 3,
                stride,
                padding,
                dilation,
            };
            let img = Tensor::arange(2 * 9 * 7).reshape(&[2, 9, 7]);
            let cols = crate::im2col(&img, &spec);
            let (k, n) = (spec.patch_rows(), spec.patch_cols());
            let mut want = vec![0.0f32; n.div_ceil(NR).max(1) * k * NR];
            pack_rhs_into(&mut want, cols.as_slice(), k, n);
            let mut got = vec![0.0f32; want.len()];
            pack_rhs_im2col_into(&mut got, img.as_slice(), &spec);
            assert_eq!(
                got, want,
                "stride {stride} dilation {dilation} padding {padding}"
            );
        }
    }

    #[test]
    fn implicit_gemm_bit_identical_to_materialized_path() {
        use crate::{normal, seeded_rng};
        let spec = test_spec();
        let mut rng = seeded_rng(77);
        let img = normal(&mut rng, &[2, 6, 5], 0.0, 1.0);
        let w = normal(&mut rng, &[4, spec.patch_rows()], 0.0, 1.0);
        let cols = crate::im2col(&img, &spec);
        let packed = PackedMatrix::pack_lhs(&w);
        let want_fwd = packed.matmul(&cols);
        let got_fwd = packed.matmul_im2col(&img, &spec);
        assert_eq!(got_fwd.as_slice(), want_fwd.as_slice());
        let g = normal(&mut rng, &[4, spec.patch_cols()], 0.0, 1.0);
        let want_dw = g.matmul(&cols.transpose());
        let got_dw = g.matmul_at_im2col(&img, &spec);
        assert_eq!(got_dw.as_slice(), want_dw.as_slice());
    }

    #[test]
    fn pack_lhs_is_p_major() {
        let a = Tensor::arange(8).reshape(&[2, 4]); // m=2 (< MR: padded), k=4
        let p = PackedMatrix::pack_lhs(&a);
        // For each p: a[0][p], a[1][p], pad, pad.
        assert_eq!(&p.panels()[..MR], &[0.0, 4.0, 0.0, 0.0]);
        assert_eq!(&p.panels()[MR..2 * MR], &[1.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn blocked_gemm_bit_identical_to_reference_on_ragged_shapes() {
        use crate::{normal, seeded_rng};
        // Shapes straddle every tile boundary: exact multiples of MR/NR,
        // off-by-one raggedness in each dimension, degenerate 1×1, and k=0.
        let shapes = [
            (1, 1, 1),
            (3, 5, 2),
            (4, 8, 8),
            (5, 7, 9),
            (7, 3, 17),
            (13, 29, 31),
            (64, 1, 1),
            (1, 64, 1),
            (5, 0, 7),
            (33, 17, 40),
        ];
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            let mut rng = seeded_rng(100 + i as u64);
            // Exact zeros in A exercise the sparsity skip, whose per-element
            // ordering the bit-identity contract depends on.
            let a =
                normal(&mut rng, &[m, k], 0.0, 1.0).map(|v| if v.abs() < 0.3 { 0.0 } else { v });
            let b = normal(&mut rng, &[k, n], 0.0, 1.0);
            let want = a.matmul_reference(&b);
            let rhs_packed = a.matmul_packed(&PackedMatrix::pack_rhs(&b));
            assert_eq!(rhs_packed.shape().dims(), &[m, n]);
            assert_eq!(
                rhs_packed.as_slice(),
                want.as_slice(),
                "rhs-packed {m}x{k}x{n} diverged from reference"
            );
            let lhs_packed = PackedMatrix::pack_lhs(&a).matmul(&b);
            assert_eq!(
                lhs_packed.as_slice(),
                want.as_slice(),
                "lhs-packed {m}x{k}x{n} diverged from reference"
            );
        }
    }

    #[test]
    fn matmul_auto_path_matches_reference_above_threshold() {
        use crate::{normal, seeded_rng};
        let mut rng = seeded_rng(7);
        let a = normal(&mut rng, &[24, 40], 0.0, 1.0);
        let b = normal(&mut rng, &[40, 32], 0.0, 1.0);
        assert_eq!(a.matmul(&b).as_slice(), a.matmul_reference(&b).as_slice());
    }

    #[test]
    fn cache_repacks_only_on_version_change() {
        let w = Tensor::arange(6).reshape(&[2, 3]);
        let mut cache = PackedCache::new();
        let mut packs = 0;
        for version in [0u64, 0, 0, 1, 1, 2] {
            cache.get_or_pack(version, || {
                packs += 1;
                PackedMatrix::pack_rhs(&w)
            });
        }
        assert_eq!(packs, 3, "one pack per distinct version");
        assert_eq!(cache.cached_version(), Some(2));
        cache.invalidate();
        assert_eq!(cache.cached_version(), None);
    }

    // --- int8 path ---

    use proptest::prelude::*;

    /// The naive i-p-j integer GEMM every i8 kernel must reproduce exactly.
    fn qgemm_reference(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p] as i32;
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j] as i32;
                }
            }
        }
        out
    }

    fn random_i8(rng: &mut impl rand::Rng, len: usize) -> Vec<i8> {
        (0..len)
            .map(|_| (rng.gen_range(-127i32..=127)) as i8)
            .collect()
    }

    #[test]
    fn quantized_gemm_bit_identical_to_integer_reference_on_ragged_shapes() {
        use crate::seeded_rng;
        let shapes = [
            (1, 1, 1),
            (3, 5, 2),
            (4, 8, 8),
            (5, 7, 9),
            (7, 3, 17),
            (13, 29, 31),
            (64, 1, 1),
            (1, 64, 1),
            (5, 0, 7),
            (33, 17, 40),
        ];
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            let mut rng = seeded_rng(300 + i as u64);
            let a = random_i8(&mut rng, m * k);
            let b = random_i8(&mut rng, k * n);
            let want = qgemm_reference(&a, &b, m, k, n);
            for width in [1usize, 8] {
                let got = exec::with_threads(width, || qgemm_i8(&a, &b, m, k, n));
                assert_eq!(got, want, "{m}x{k}x{n} diverged at pool width {width}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The blocked/SIMD i8 GEMM is pinned bit-identical to the scalar
        /// integer reference at pool widths 1 and 8 on arbitrary ragged
        /// shapes (integer arithmetic is exact, so equality is bitwise).
        #[test]
        fn prop_quantized_gemm_matches_reference_at_widths_1_and_8(
            (m, k, n, seed) in (1usize..24, 0usize..40, 1usize..40, 0u64..1000)
        ) {
            use crate::seeded_rng;
            let mut rng = seeded_rng(seed);
            let a = random_i8(&mut rng, m * k);
            let b = random_i8(&mut rng, k * n);
            let want = qgemm_reference(&a, &b, m, k, n);
            for width in [1usize, 8] {
                let got = exec::with_threads(width, || qgemm_i8(&a, &b, m, k, n));
                prop_assert_eq!(&got, &want, "{}x{}x{} width {}", m, k, n, width);
            }
        }

        /// The quantized implicit-conv path is pinned bit-identical across
        /// pool widths, and — for specs where every pixel reaches a patch —
        /// to the plain quantized GEMM over the materialized patch matrix.
        #[test]
        fn prop_quantized_im2col_matches_materialized_at_widths_1_and_8(
            (oc, stride, padding, seed) in (1usize..7, 1usize..3, 0usize..2, 0u64..1000)
        ) {
            use crate::{normal, seeded_rng};
            let spec = Im2ColSpec {
                channels: 2,
                height: 7,
                width: 6,
                kernel: 3,
                stride,
                padding,
                dilation: 1,
            };
            let mut rng = seeded_rng(seed);
            let img = normal(&mut rng, &[2, 7, 6], 0.0, 1.0);
            let w = normal(&mut rng, &[oc, spec.patch_rows()], 0.0, 1.0);
            let packed = QPackedMatrix::pack_lhs(&w);
            let serial = exec::with_threads(1, || packed.qmatmul_im2col(&img, &spec));
            let wide = exec::with_threads(8, || packed.qmatmul_im2col(&img, &spec));
            prop_assert_eq!(serial.as_slice(), wide.as_slice());
            if stride == 1 && padding == 1 {
                // Every pixel appears in some patch, so quantizing the
                // image commutes with materializing im2col and the two
                // paths agree bitwise.
                let cols = crate::im2col(&img, &spec);
                let via_cols = packed.qmatmul(&cols);
                prop_assert_eq!(serial.as_slice(), via_cols.as_slice());
            }
        }
    }

    #[test]
    fn quantized_im2col_pack_matches_materialized_q_pack() {
        use crate::{normal, seeded_rng};
        // Sweep the same stride/dilation/padding grid as the f32 gather
        // test so the run-bounds reuse is exercised at every edge.
        for (i, &(stride, dilation, padding)) in [
            (1, 1, 1),
            (2, 1, 0),
            (2, 2, 1),
            (3, 1, 2),
            (3, 2, 3),
            (2, 3, 2),
            (4, 1, 1),
        ]
        .iter()
        .enumerate()
        {
            let spec = Im2ColSpec {
                channels: 2,
                height: 9,
                width: 7,
                kernel: 3,
                stride,
                padding,
                dilation,
            };
            let mut rng = seeded_rng(500 + i as u64);
            let img = normal(&mut rng, &[2, 9, 7], 0.0, 1.0);
            let (qimg, _) = quantize_slice(img.as_slice());
            // Materialize im2col over the quantized values (exact small
            // integers survive the f32 round trip) and pack that.
            let qimg_f: Vec<f32> = qimg.iter().map(|&v| v as f32).collect();
            let cols = crate::im2col(&Tensor::from_vec(qimg_f, &[2, 9, 7]), &spec);
            let qcols: Vec<i8> = cols.as_slice().iter().map(|&v| v as i8).collect();
            let (k, n) = (spec.patch_rows(), spec.patch_cols());
            let mut want = vec![0i8; n.div_ceil(NR).max(1) * kpad(k) * NR];
            pack_rhs_q_into(&mut want, &qcols, k, n);
            let mut got = vec![0i8; want.len()];
            pack_rhs_im2col_q_into(&mut got, &qimg, &spec);
            assert_eq!(
                got, want,
                "stride {stride} dilation {dilation} padding {padding}"
            );
        }
    }

    #[test]
    fn qmatmul_packed_tracks_f32_within_the_analytic_quant_bound() {
        use crate::{normal, seeded_rng};
        let mut rng = seeded_rng(42);
        let (m, k, n) = (9, 23, 18);
        let x = normal(&mut rng, &[m, k], 0.0, 1.0);
        let w = normal(&mut rng, &[n, k], 0.0, 1.0);
        let packed = QPackedMatrix::pack_rhs_transposed(&w);
        let got = x.qmatmul_packed(&packed);
        let want = x.matmul(&w.transpose());
        // out_ij = Σ_p x_ip·w_jp with x = sa·qx + ex (|ex| ≤ sa/2) and
        // w = sw_j·qw + ew (|ew| ≤ sw_j/2), so the per-element error is
        // bounded by Σ_p (sa/2·|w_jp| + sw_j/2·|x_ip| + sa·sw_j/4).
        let (_, sa) = quantize_slice(x.as_slice());
        for i in 0..m {
            for j in 0..n {
                let swj = packed.scales()[j];
                let mut bound = 0.0f32;
                for p in 0..k {
                    bound += 0.5 * sa * w.as_slice()[j * k + p].abs()
                        + 0.5 * swj * x.as_slice()[i * k + p].abs()
                        + 0.25 * sa * swj;
                }
                let err = (got.as_slice()[i * n + j] - want.as_slice()[i * n + j]).abs();
                assert!(
                    err <= bound,
                    "({i},{j}): err {err} exceeds analytic bound {bound}"
                );
            }
        }
    }

    #[test]
    fn quantized_cache_requantizes_on_version_bump() {
        let w = Tensor::arange(8).reshape(&[2, 4]);
        let mut cache: PackedCache<QPackedMatrix> = PackedCache::new();
        let mut packs = 0;
        for version in [3u64, 3, 4, 4, 5] {
            cache.get_or_pack(version, || {
                packs += 1;
                QPackedMatrix::pack_rhs_transposed(&w)
            });
        }
        assert_eq!(packs, 3, "one quantize+pack per distinct version");
        assert_eq!(cache.cached_version(), Some(5));
    }

    #[test]
    fn batched_matmul_is_bit_identical_to_sequential_calls() {
        use crate::{normal, seeded_rng};
        let mut rng = seeded_rng(77);
        let (k, n) = (21, 19);
        let w = normal(&mut rng, &[n, k], 0.0, 1.0);
        let packed = PackedMatrix::pack_rhs_transposed(&w);
        // Ragged session shapes around the MR boundary, including m = 0.
        let sessions: Vec<Tensor> = [1usize, 4, 7, 0, 3, 12]
            .iter()
            .map(|&m| normal(&mut rng, &[m, k], 0.0, 1.0))
            .collect();
        let refs: Vec<&Tensor> = sessions.iter().collect();
        for width in [1usize, 8] {
            exec::with_threads(width, || {
                let batched = matmul_packed_batched(&refs, &packed);
                for (a, got) in sessions.iter().zip(&batched) {
                    let want = a.matmul_packed(&packed);
                    assert_eq!(got.shape(), want.shape());
                    assert_eq!(
                        got.as_slice(),
                        want.as_slice(),
                        "width {width}, m={}",
                        a.shape().dim(0)
                    );
                }
            });
        }
    }

    #[test]
    fn batched_qmatmul_is_bit_identical_to_sequential_calls() {
        use crate::{normal, seeded_rng};
        let mut rng = seeded_rng(78);
        let (k, n) = (23, 18);
        let w = normal(&mut rng, &[n, k], 0.0, 1.0);
        let packed = QPackedMatrix::pack_rhs_transposed(&w);
        // Different value ranges per session force *different* per-tensor
        // activation scales, so the per-row rescale is genuinely exercised.
        let sessions: Vec<Tensor> = [(1usize, 0.5f32), (5, 2.0), (8, 0.1), (3, 7.0)]
            .iter()
            .map(|&(m, sd)| normal(&mut rng, &[m, k], 0.0, sd))
            .collect();
        let refs: Vec<&Tensor> = sessions.iter().collect();
        for width in [1usize, 8] {
            exec::with_threads(width, || {
                let batched = qmatmul_packed_batched(&refs, &packed);
                for (a, got) in sessions.iter().zip(&batched) {
                    let want = a.qmatmul_packed(&packed);
                    assert_eq!(
                        got.as_slice(),
                        want.as_slice(),
                        "width {width}, m={}",
                        a.shape().dim(0)
                    );
                }
            });
        }
    }

    #[test]
    fn batched_matmul_handles_empty_batches() {
        let w = Tensor::arange(8).reshape(&[2, 4]);
        let f = PackedMatrix::pack_rhs_transposed(&w);
        let q = QPackedMatrix::pack_rhs_transposed(&w);
        assert!(matmul_packed_batched(&[], &f).is_empty());
        assert!(qmatmul_packed_batched(&[], &q).is_empty());
        let empty = Tensor::zeros(&[0, 4]);
        let out = matmul_packed_batched(&[&empty], &f);
        assert_eq!(out[0].shape().dims(), &[0, 2]);
        let qout = qmatmul_packed_batched(&[&empty], &q);
        assert_eq!(qout[0].shape().dims(), &[0, 2]);
    }

    #[test]
    fn shared_cache_version_bump_repacks_once_not_once_per_session() {
        let w = Tensor::arange(8).reshape(&[2, 4]);
        let shared: SharedPackedCache = SharedPackedCache::new();
        // Every session holds a clone of the same process-wide cache.
        let sessions: Vec<SharedPackedCache> = (0..6).map(|_| shared.clone()).collect();
        for s in &sessions {
            s.get_or_pack(1, || PackedMatrix::pack_rhs_transposed(&w));
        }
        assert_eq!(shared.pack_count(), 1, "first version packs once");
        // A weight push bumps the version: the first session to notice
        // repacks; the other five reuse the new panels.
        for s in &sessions {
            s.get_or_pack(2, || PackedMatrix::pack_rhs_transposed(&w));
        }
        assert_eq!(shared.pack_count(), 2, "version bump repacks exactly once");
        assert_eq!(shared.cached_version(), Some(2));
        shared.invalidate();
        assert_eq!(shared.cached_version(), None);
        sessions[0].get_or_pack(2, || PackedMatrix::pack_rhs_transposed(&w));
        assert_eq!(shared.pack_count(), 3, "invalidation forces one repack");
    }

    #[test]
    fn shared_cache_handout_survives_a_concurrent_repack() {
        let w1 = Tensor::arange(8).reshape(&[2, 4]);
        let w2 = w1.map(|v| v + 1.0);
        let shared: SharedPackedCache = SharedPackedCache::new();
        let old = shared.get_or_pack(1, || PackedMatrix::pack_rhs_transposed(&w1));
        // Another session races ahead to version 2; the old handout's
        // panels must stay valid (Arc keeps them alive).
        let new = shared.get_or_pack(2, || PackedMatrix::pack_rhs_transposed(&w2));
        assert_ne!(old.panels(), new.panels());
        let x = Tensor::arange(4).reshape(&[1, 4]);
        assert_eq!(
            x.matmul_packed(&old).as_slice(),
            x.matmul(&w1.transpose()).as_slice()
        );
    }
}
