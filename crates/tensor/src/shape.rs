//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// A `Shape` is an immutable list of dimension sizes. The element count of a
/// tensor is the product of its dimensions; a zero-dimensional shape denotes
/// a scalar with one element.
///
/// ```
/// use solo_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.ndim(), 3);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The number of dimensions (rank) of the shape.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// The total number of elements implied by this shape.
    ///
    /// The empty (rank-0) shape has one element, matching the convention for
    /// scalars.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements (i.e. some dimension is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        assert!(
            axis < self.dims.len(),
            "axis {axis} out of range for shape {self}"
        );
        self.dims[axis]
    }

    /// All dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides for this shape (innermost stride is 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape {self}",
            index.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} of {self}");
            off += i * strides[axis];
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({:?})", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[]).len(), 1);
        assert_eq!(Shape::new(&[5, 0, 2]).len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert!(off < s.len());
                    assert!(seen.insert(off), "duplicate offset {off}");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_range() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rejects_wrong_rank() {
        Shape::new(&[2, 2]).offset(&[0]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2×3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }
}
