//! GEMM, transpose and the `im2col` lowering used for convolutions.
//!
//! All the kernels here dispatch through [`crate::exec`]: outputs are
//! partitioned by whole rows (or, for [`col2im`], whole channels) so that
//! each element is written by exactly one worker and the result is
//! bit-identical at any pool width.

use crate::{exec, packed, Tensor};
use packed::{MR, NR};

/// Multiply–add volume (`m·k·n`) below which [`Tensor::matmul`] (and the
/// transposed-operand variants) runs the naive reference kernel instead of
/// packing panels. Packing costs two passes over the operands, which only
/// pays for itself once the product re-reads them a few times over; both
/// paths are bit-identical, so the threshold is purely a performance knob.
///
/// Public so layers built on top (e.g. `Conv2d`) can gate their own
/// pack-heavy fast paths on the same volume.
pub const BLOCKED_MIN_MULADDS: usize = 16 * 16 * 16;

impl Tensor {
    /// Matrix multiplication of two rank-2 tensors: `[m,k] × [k,n] → [m,n]`.
    ///
    /// Above a fixed multiply–add volume this runs the cache-blocked,
    /// panel-packed GEMM (register-tiled micro-kernel over p-major column
    /// and row panels); small products fall back to
    /// [`Tensor::matmul_reference`]. Both paths accumulate each output
    /// element over ascending `k` with the same zero-skip, so the result is
    /// bit-identical between them and under any `SOLO_THREADS` width.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.shape().ndim(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (other.shape().dim(0), other.shape().dim(1));
        assert_eq!(
            k,
            k2,
            "matmul inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        if m * k * n < BLOCKED_MIN_MULADDS {
            return self.matmul_reference(other);
        }
        let mut b_panels = exec::take_buf_at("gemm.pack_rhs", n.div_ceil(NR).max(1) * k * NR);
        packed::pack_rhs_into(&mut b_panels, other.as_slice(), k, n);
        let out = packed::gemm_pack_lhs(self.as_slice(), &b_panels, m, k, n);
        exec::recycle_buf(b_panels);
        out
    }

    /// Matrix product with the *right* operand transposed — `self · otherᵀ`,
    /// `[m,k] × [n,k] → [m,n]` — without materializing the transpose.
    ///
    /// Above the [`BLOCKED_MIN_MULADDS`] volume this packs `otherᵀ` into
    /// column panels straight from `other`'s rows (the layout
    /// `PackedMatrix::pack_rhs_transposed` already uses for `Linear`
    /// weights); below it, a reference loop reads `other` row-wise. Both
    /// paths accumulate each output element over ascending `k` with the
    /// zero-skip on `self`, exactly the chains `self.matmul(&other.transpose())`
    /// produces, so the result is bit-identical to that expression at any
    /// pool width — with zero transpose traffic.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the `k` extents differ.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul_at lhs must be rank-2");
        assert_eq!(other.shape().ndim(), 2, "matmul_at rhs must be rank-2");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (n, k2) = (other.shape().dim(0), other.shape().dim(1));
        assert_eq!(
            k,
            k2,
            "matmul_at inner dimension mismatch: {} vs {}ᵀ",
            self.shape(),
            other.shape()
        );
        if m * k * n < BLOCKED_MIN_MULADDS {
            let a = self.as_slice();
            let b = other.as_slice();
            let mut out = exec::take_buf_at("gemm.out", m * n);
            exec::pool().par_rows(&mut out, n.max(1), 2 * k * n, |i, orow| {
                let arow = &a[i * k..(i + 1) * k];
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o += av * b[j * k + p];
                    }
                }
            });
            return Tensor::from_vec(out, &[m, n]);
        }
        let mut b_panels = exec::take_buf_at("gemm.pack_rhs", n.div_ceil(NR).max(1) * k * NR);
        packed::pack_rhs_transposed_into(&mut b_panels, other.as_slice(), n, k);
        let out = packed::gemm_pack_lhs(self.as_slice(), &b_panels, m, k, n);
        exec::recycle_buf(b_panels);
        out
    }

    /// Matrix product with the *left* operand transposed — `selfᵀ · other`,
    /// `[k,m] × [k,n] → [m,n]` — without materializing the transpose.
    ///
    /// Above the [`BLOCKED_MIN_MULADDS`] volume this packs `selfᵀ` into row
    /// panels straight from `self`'s rows (each panel row is a contiguous
    /// slice of a source row, so the pack is a strided memcpy); below it, a
    /// reference loop gathers `self` columns. Both paths accumulate over
    /// ascending `k` with the zero-skip on the (logical) left operand, so
    /// the result is bit-identical to `self.transpose().matmul(other)` at
    /// any pool width — with zero transpose traffic.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the `k` extents differ.
    pub fn matmul_ta(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul_ta lhs must be rank-2");
        assert_eq!(other.shape().ndim(), 2, "matmul_ta rhs must be rank-2");
        let (k, m) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (other.shape().dim(0), other.shape().dim(1));
        assert_eq!(
            k,
            k2,
            "matmul_ta inner dimension mismatch: {}ᵀ vs {}",
            self.shape(),
            other.shape()
        );
        if m * k * n < BLOCKED_MIN_MULADDS {
            let a = self.as_slice();
            let b = other.as_slice();
            let mut out = exec::take_buf_at("gemm.out", m * n);
            exec::pool().par_rows(&mut out, n.max(1), 2 * k * n, |i, orow| {
                for p in 0..k {
                    let av = a[p * m + i];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            });
            return Tensor::from_vec(out, &[m, n]);
        }
        let mut a_panels = exec::take_buf_at("gemm.pack_lhs", m.div_ceil(MR).max(1) * k * MR);
        packed::pack_lhs_transposed_into(&mut a_panels, self.as_slice(), k, m);
        let mut b_panels = exec::take_buf_at("gemm.pack_rhs", n.div_ceil(NR).max(1) * k * NR);
        packed::pack_rhs_into(&mut b_panels, other.as_slice(), k, n);
        let out = packed::gemm_packed(&a_panels, &b_panels, m, k, n);
        exec::recycle_buf(b_panels);
        exec::recycle_buf(a_panels);
        out
    }

    /// The unblocked i-k-j reference GEMM the blocked kernel is verified
    /// against: row-partitioned across the execution pool, ascending-`k`
    /// accumulation per output element, `a == 0.0` terms skipped.
    ///
    /// [`Tensor::matmul`] uses this directly for small products; tests and
    /// benches call it to pin the blocked kernel's bit-identity and speedup.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions differ.
    pub fn matmul_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.shape().ndim(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (other.shape().dim(0), other.shape().dim(1));
        assert_eq!(
            k,
            k2,
            "matmul inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = exec::take_buf_at("gemm.out", m * n);
        exec::pool().par_rows(&mut out, n.max(1), 2 * k * n, |i, orow| {
            let arow = &a[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// Every call increments [`exec::ExecStats::transposes`]; the training
    /// hot path is expected to keep that counter flat (use the
    /// `matmul_at`/`matmul_ta`/`matvec_t` entry points instead of
    /// transpose-then-multiply).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "transpose requires rank-2");
        exec::note_transpose();
        let (r, c) = (self.shape().dim(0), self.shape().dim(1));
        let src = self.as_slice();
        let mut out = exec::take_buf_at("linalg.transpose", r * c);
        // Row j of the output gathers column j of the input with stride c:
        // once the stride exceeds a cache line (16 f32), every gather touches
        // a fresh line, so the per-row cost scales with the line-miss count,
        // not the element count — hence the `c.min(16)` factor.
        exec::pool().par_rows(&mut out, r.max(1), 2 * r * c.min(16), |j, orow| {
            for (i, o) in orow.iter_mut().enumerate() {
                *o = src[i * c + j];
            }
        });
        Tensor::from_vec(out, &[c, r])
    }

    /// Matrix–vector product: `[m,k] × [k] → [m]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2, `v` is not rank-1, or dimensions
    /// disagree.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.shape().ndim(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        assert_eq!(k, v.len(), "matvec dimension mismatch");
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = exec::take_buf(m);
        exec::pool().par_rows(&mut out, 1, 2 * k, |i, orow| {
            orow[0] = a[i * k..(i + 1) * k]
                .iter()
                .zip(x)
                .map(|(&av, &xv)| av * xv)
                .sum();
        });
        Tensor::from_vec(out, &[m])
    }

    /// Transposed matrix–vector product: `selfᵀ · v`, `[k,m] × [k] → [m]`,
    /// without materializing the transpose.
    ///
    /// Output element `i` is the ascending-`k` dot of `self`'s column `i`
    /// with `v` — the exact chain `self.transpose().matvec(v)` produces —
    /// so the result is bit-identical to that expression at any pool width.
    /// This is the shape the RNN backward pass wants per timestep.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2, `v` is not rank-1, or dimensions
    /// disagree.
    pub fn matvec_t(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matvec_t lhs must be rank-2");
        assert_eq!(v.shape().ndim(), 1, "matvec_t rhs must be rank-1");
        let (k, m) = (self.shape().dim(0), self.shape().dim(1));
        assert_eq!(k, v.len(), "matvec_t dimension mismatch");
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = exec::take_buf(m);
        exec::pool().par_rows(&mut out, 1, 2 * k, |i, orow| {
            orow[0] = x.iter().enumerate().map(|(p, &xv)| a[p * m + i] * xv).sum();
        });
        Tensor::from_vec(out, &[m])
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// Long vectors reduce in the same fixed-length chunks as
    /// [`Tensor::sum`], with partials folded in order, so the result does
    /// not depend on the pool width; vectors at or below one chunk reduce
    /// exactly like the original serial kernel.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-1 or lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape().ndim(), 1, "dot lhs must be rank-1");
        assert_eq!(other.shape().ndim(), 1, "dot rhs must be rank-1");
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        let (a, b) = (self.as_slice(), other.as_slice());
        let chunk = crate::ops::REDUCE_CHUNK;
        if a.len() <= chunk {
            return a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        }
        exec::pool()
            .par_partials(a.len(), chunk, |s, e| {
                a[s..e]
                    .iter()
                    .zip(&b[s..e])
                    .map(|(&x, &y)| x * y)
                    .sum::<f32>()
            })
            .iter()
            .sum()
    }
}

/// Geometry of an `im2col` lowering for a 2-D convolution over a `[C, H, W]`
/// input.
///
/// The same spec is reused by [`im2col`] (forward) and [`col2im`] (gradient
/// scatter in the backward pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Im2ColSpec {
    /// Input channel count.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding in both directions.
    pub padding: usize,
    /// Dilation in both directions (1 = dense kernel).
    pub dilation: usize,
}

impl Im2ColSpec {
    /// Output height of the convolution this spec describes.
    pub fn out_height(&self) -> usize {
        conv_out(
            self.height,
            self.kernel,
            self.stride,
            self.padding,
            self.dilation,
        )
    }

    /// Output width of the convolution this spec describes.
    pub fn out_width(&self) -> usize {
        conv_out(
            self.width,
            self.kernel,
            self.stride,
            self.padding,
            self.dilation,
        )
    }

    /// Rows of the patch matrix this spec lowers to: `C·k·k`, one row per
    /// kernel tap.
    pub fn patch_rows(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }

    /// Columns of the patch matrix: `outH·outW`, one column per output
    /// position.
    pub fn patch_cols(&self) -> usize {
        self.out_height() * self.out_width()
    }

    /// Decomposes a patch-matrix row index into its `(channel, ki, kj)`
    /// kernel tap — the inverse of `row = (c·k + ki)·k + kj`.
    #[inline]
    pub fn tap(&self, row: usize) -> (usize, usize, usize) {
        let k = self.kernel;
        (row / (k * k), (row / k) % k, row % k)
    }

    /// The (zero-padded) input pixel that kernel tap `(c, ki, kj)` reads at
    /// output position `(oi, oj)` — the single geometry rule shared by
    /// [`im2col`], [`col2im`] and the implicit-GEMM panel packers, which is
    /// why packing panels straight from the image yields exactly the values
    /// a materialized patch matrix would hold.
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than the `[C, H, W]` volume the spec
    /// describes and the tap lands in bounds.
    #[inline]
    pub fn pixel(&self, src: &[f32], c: usize, ki: usize, kj: usize, oi: usize, oj: usize) -> f32 {
        let ii = (oi * self.stride + ki * self.dilation) as isize - self.padding as isize;
        let jj = (oj * self.stride + kj * self.dilation) as isize - self.padding as isize;
        if ii < 0 || ii >= self.height as isize || jj < 0 || jj >= self.width as isize {
            0.0
        } else {
            src[(c * self.height + ii as usize) * self.width + jj as usize]
        }
    }
}

fn conv_out(dim: usize, kernel: usize, stride: usize, padding: usize, dilation: usize) -> usize {
    let eff = dilation * (kernel - 1) + 1;
    (dim + 2 * padding).saturating_sub(eff) / stride + 1
}

/// Lowers a `[C, H, W]` image into the `[C·k·k, outH·outW]` patch matrix so a
/// convolution becomes a single GEMM with the `[outC, C·k·k]` weight matrix.
///
/// # Panics
///
/// Panics if `input` is not rank-3 or does not match `spec`.
pub fn im2col(input: &Tensor, spec: &Im2ColSpec) -> Tensor {
    assert_eq!(input.shape().ndim(), 3, "im2col input must be [C,H,W]");
    assert_eq!(
        input.shape().dims(),
        &[spec.channels, spec.height, spec.width],
        "im2col input does not match spec"
    );
    let (oh, ow) = (spec.out_height(), spec.out_width());
    let rows = spec.patch_rows();
    let cols = oh * ow;
    let src = input.as_slice();
    let mut out = exec::take_buf_at("linalg.im2col", rows * cols);
    // One patch row per (channel, ki, kj) kernel tap; rows are independent.
    exec::pool().par_rows(&mut out, cols.max(1), 4 * cols, |row, orow| {
        let (c, ki, kj) = spec.tap(row);
        for oi in 0..oh {
            let ii = (oi * spec.stride + ki * spec.dilation) as isize - spec.padding as isize;
            if ii < 0 || ii >= spec.height as isize {
                continue;
            }
            for oj in 0..ow {
                let jj = (oj * spec.stride + kj * spec.dilation) as isize - spec.padding as isize;
                if jj < 0 || jj >= spec.width as isize {
                    continue;
                }
                orow[oi * ow + oj] =
                    src[(c * spec.height + ii as usize) * spec.width + jj as usize];
            }
        }
    });
    Tensor::from_vec(out, &[rows, cols])
}

/// Scatters a `[C·k·k, outH·outW]` patch-gradient matrix back onto the
/// `[C, H, W]` input layout — the adjoint of [`im2col`], used by the
/// convolution backward pass.
///
/// # Panics
///
/// Panics if `cols` is not rank-2 or its shape disagrees with `spec`.
pub fn col2im(cols: &Tensor, spec: &Im2ColSpec) -> Tensor {
    let (oh, ow) = (spec.out_height(), spec.out_width());
    let k = spec.kernel;
    assert_eq!(cols.shape().ndim(), 2, "col2im input must be rank-2");
    assert_eq!(
        cols.shape().dims(),
        &[spec.channels * k * k, oh * ow],
        "col2im input does not match spec"
    );
    let src = cols.as_slice();
    let ncols = oh * ow;
    let plane = spec.height * spec.width;
    let mut out = exec::take_buf_at("linalg.col2im", spec.channels * plane);
    // Kernel taps of the same channel scatter-add into overlapping pixels,
    // so the finest safe partition is one whole channel plane per task; the
    // per-channel accumulation order is the same as the serial kernel's.
    exec::pool().par_rows(&mut out, plane.max(1), 4 * k * k * ncols, |c, chunk| {
        for ki in 0..k {
            for kj in 0..k {
                let row = (c * k + ki) * k + kj;
                for oi in 0..oh {
                    let ii =
                        (oi * spec.stride + ki * spec.dilation) as isize - spec.padding as isize;
                    if ii < 0 || ii >= spec.height as isize {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj * spec.dilation) as isize
                            - spec.padding as isize;
                        if jj < 0 || jj >= spec.width as isize {
                            continue;
                        }
                        chunk[ii as usize * spec.width + jj as usize] +=
                            src[row * ncols + oi * ow + oj];
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[spec.channels, spec.height, spec.width])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(a.matmul(&b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_dims() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.transpose(), a);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
    }

    #[test]
    fn matmul_at_ta_bit_identical_to_transpose_path() {
        use crate::{normal, seeded_rng};
        // Shapes below and above BLOCKED_MIN_MULADDS so both the reference
        // loops and the transposed-packing paths are exercised, with ragged
        // tile boundaries in each dimension.
        let shapes = [
            (2, 3, 4),
            (5, 7, 9),
            (13, 17, 19),
            (24, 40, 33),
            (33, 64, 48),
        ];
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            let mut rng = seeded_rng(300 + i as u64);
            let a =
                normal(&mut rng, &[m, k], 0.0, 1.0).map(|v| if v.abs() < 0.3 { 0.0 } else { v });
            let bt = normal(&mut rng, &[n, k], 0.0, 1.0);
            let want_at = a.matmul(&bt.transpose());
            assert_eq!(
                a.matmul_at(&bt).as_slice(),
                want_at.as_slice(),
                "matmul_at {m}x{k}x{n} diverged"
            );
            let at =
                normal(&mut rng, &[k, m], 0.0, 1.0).map(|v| if v.abs() < 0.3 { 0.0 } else { v });
            let b = normal(&mut rng, &[k, n], 0.0, 1.0);
            let want_ta = at.transpose().matmul(&b);
            assert_eq!(
                at.matmul_ta(&b).as_slice(),
                want_ta.as_slice(),
                "matmul_ta {m}x{k}x{n} diverged"
            );
        }
    }

    #[test]
    fn matvec_t_matches_transposed_matvec() {
        use crate::{normal, seeded_rng};
        let mut rng = seeded_rng(42);
        let a = normal(&mut rng, &[7, 5], 0.0, 1.0);
        let v = normal(&mut rng, &[7], 0.0, 1.0);
        assert_eq!(
            a.matvec_t(&v).as_slice(),
            a.transpose().matvec(&v).as_slice()
        );
    }

    #[test]
    fn transpose_increments_the_stats_counter() {
        let before = exec::stats().transposes;
        let _ = Tensor::arange(6).reshape(&[2, 3]).transpose();
        assert!(exec::stats().transposes > before);
    }

    #[test]
    fn patch_geometry_matches_materialized_im2col() {
        let spec = Im2ColSpec {
            channels: 2,
            height: 5,
            width: 4,
            kernel: 3,
            stride: 2,
            padding: 1,
            dilation: 1,
        };
        let img = Tensor::arange((2 * 5 * 4) as usize).reshape(&[2, 5, 4]);
        let cols = im2col(&img, &spec);
        assert_eq!(cols.shape().dims(), &[spec.patch_rows(), spec.patch_cols()]);
        let ow = spec.out_width();
        for row in 0..spec.patch_rows() {
            let (c, ki, kj) = spec.tap(row);
            for col in 0..spec.patch_cols() {
                let want = cols.at(&[row, col]);
                let got = spec.pixel(img.as_slice(), c, ki, kj, col / ow, col % ow);
                assert_eq!(got, want, "pixel mismatch at ({row}, {col})");
            }
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]);
        let got = a.matvec(&v);
        let want = a.matmul(&v.reshape(&[3, 1]));
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn dot_of_orthogonal_is_zero() {
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![0.0, 3.0], &[2]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn conv_out_dims() {
        let spec = Im2ColSpec {
            channels: 1,
            height: 5,
            width: 5,
            kernel: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        };
        assert_eq!(spec.out_height(), 5);
        assert_eq!(spec.out_width(), 5);
        let strided = Im2ColSpec { stride: 2, ..spec };
        assert_eq!(strided.out_height(), 3);
        let dilated = Im2ColSpec {
            dilation: 2,
            padding: 2,
            ..spec
        };
        assert_eq!(dilated.out_height(), 5);
    }

    #[test]
    fn im2col_identity_kernel() {
        // A 1x1 kernel with stride 1 should reproduce the image as one row
        // per channel.
        let img = Tensor::arange(8).reshape(&[2, 2, 2]);
        let spec = Im2ColSpec {
            channels: 2,
            height: 2,
            width: 2,
            kernel: 1,
            stride: 1,
            padding: 0,
            dilation: 1,
        };
        let cols = im2col(&img, &spec);
        assert_eq!(cols.shape().dims(), &[2, 4]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_padding_inserts_zeros() {
        let img = Tensor::ones(&[1, 2, 2]);
        let spec = Im2ColSpec {
            channels: 1,
            height: 2,
            width: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        };
        let cols = im2col(&img, &spec);
        assert_eq!(cols.shape().dims(), &[9, 4]);
        // Top-left kernel tap over output (0,0) reads padded zero.
        assert_eq!(cols.at(&[0, 0]), 0.0);
        // Center tap always reads real pixels.
        assert_eq!(cols.at(&[4, 0]), 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y: the defining
        // property of the adjoint, which the conv backward pass relies on.
        let spec = Im2ColSpec {
            channels: 2,
            height: 4,
            width: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        };
        let x = Tensor::arange(32).reshape(&[2, 4, 4]);
        let fwd = im2col(&x, &spec);
        let y = fwd.map(|v| (v * 0.37).sin()); // arbitrary cotangent
        let lhs: f32 = fwd
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&y, &spec);
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3,
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }
}
