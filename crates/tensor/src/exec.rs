//! The workspace execution layer: a process-wide, size-capped worker pool
//! with deterministic partitioned dispatch, plus a reusable `f32` scratch
//! buffer pool.
//!
//! Every compute-heavy kernel in the workspace (`matmul`, `im2col`/`col2im`,
//! bilinear resize, pooling, the row-wise normalization kernels, the big
//! reductions) and every coarse experiment fan-out (Table 2 grid, Fig. 13a
//! sweep) dispatches through this module, so the thread budget of the whole
//! process is governed in exactly one place.
//!
//! # Determinism contract
//!
//! Results are bit-identical at any pool width:
//!
//! * [`Pool::par_rows`] partitions an output buffer into contiguous row
//!   spans. Each row is written by exactly one task using the same serial
//!   per-row code, so the partition (and therefore the worker count) cannot
//!   change a single bit of the output.
//! * [`Pool::par_tasks`] hands each index to exactly one worker; tasks must
//!   be independent (all call sites seed per-index RNGs), so scheduling
//!   order is unobservable.
//! * Reductions are chunked at a *fixed* chunk size (see
//!   [`Pool::par_partials`]): partials are computed per chunk and folded in
//!   chunk order, so the grouping — and hence the floating-point rounding —
//!   is a function of the data length only, never of the worker count.
//!
//! # Nesting
//!
//! Dispatch is depth-1: code already running inside a pool worker executes
//! nested dispatches serially. A Table 2 cell running under `par_tasks`
//! therefore trains on plain serial kernels, and the live thread count
//! never exceeds the pool width.
//!
//! # Configuration
//!
//! The width is read once, at first use, from `SOLO_THREADS` (default: the
//! machine's available parallelism, capped at [`MAX_WIDTH`]). Tests and
//! benches can override the width for the current thread with
//! [`with_threads`], which is how the determinism suite proves the
//! bit-identity claim inside one process.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Hard cap on the pool width, whatever `SOLO_THREADS` says.
pub const MAX_WIDTH: usize = 64;

/// Minimum estimated work (scalar ops) before a kernel fans out. Below
/// this, thread spawn/join overhead dominates and the serial path wins.
const MIN_PAR_WORK: usize = 400_000;

/// Buffers larger than this are dropped instead of pooled (16 MiB of f32).
const MAX_POOLED_ELEMS: usize = 1 << 22;

/// Maximum number of idle buffers retained by the pool.
const MAX_POOLED_BUFFERS: usize = 32;

thread_local! {
    /// Set while the current thread is executing inside a pool dispatch;
    /// forces nested dispatches onto the serial path.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread width override installed by [`with_threads`].
    static WIDTH_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The process-wide execution pool: a configured worker width plus the
/// scratch-buffer free list. Obtain it through [`pool`].
pub struct Pool {
    width: usize,
    buffers: BufferPool,
}

/// The process-wide pool, initialized on first use.
pub fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::from_env)
}

/// Runs `f` with the pool width overridden to `n` on the current thread.
///
/// This is the seam the determinism tests use to compare `n = 1` against a
/// wide pool inside a single process; it also lets benches measure the
/// serial baseline without re-spawning the process under `SOLO_THREADS=1`.
/// Nested overrides restore the previous value on exit (including on
/// panic).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH_OVERRIDE.with(|w| w.set(self.0));
        }
    }
    let _restore = Restore(WIDTH_OVERRIDE.with(|w| w.replace(Some(n.max(1)))));
    f()
}

/// Takes a zeroed `f32` buffer of exactly `len` elements from the global
/// scratch pool, reusing a previously recycled allocation when one is
/// large enough.
pub fn take_buf(len: usize) -> Vec<f32> {
    pool().buffers.take("untagged", len)
}

/// Like [`take_buf`], but attributes the handout to `site` in the per-site
/// scratch accounting (see [`site_stats`]). Hot kernels tag their scratch so
/// the bench bin and the memory-regression tests can pin down exactly which
/// call site allocated what.
pub fn take_buf_at(site: &'static str, len: usize) -> Vec<f32> {
    pool().buffers.take(site, len)
}

/// Returns a buffer to the global scratch pool so a later [`take_buf`] can
/// reuse its allocation. Oversized buffers are dropped; see the caps on
/// [`MAX_POOLED_ELEMS`] and [`MAX_POOLED_BUFFERS`].
pub fn recycle_buf(buf: Vec<f32>) {
    pool().buffers.give(buf);
}

/// Snapshot of the execution layer's instrumentation counters.
///
/// All counters are process-wide and monotonic except `live_bytes`; take a
/// snapshot before and after a region and subtract to measure it. Obtained
/// via [`stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Buffers handed out by [`take_buf`] / [`take_buf_at`].
    pub takes: u64,
    /// Handouts that reused a pooled allocation instead of hitting the
    /// system allocator.
    pub reuse_hits: u64,
    /// Total bytes handed out (4 × requested elements per take, whether or
    /// not the allocation was reused).
    pub taken_bytes: u64,
    /// Bytes currently outstanding: taken and not yet recycled. Buffers
    /// that leave the pool's custody for good (e.g. a result `Vec` moved
    /// into a tensor the caller keeps) stay counted until recycled, so this
    /// is an upper bound on pooled-scratch residency.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_live_bytes: u64,
    /// Explicit `Tensor::transpose()` materializations. The transpose-free
    /// training-step guarantee is asserted as a zero delta of this counter.
    pub transposes: u64,
}

/// Per-site scratch accounting for one `site` tag passed to
/// [`take_buf_at`]. Obtained via [`site_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteStats {
    /// The tag passed to [`take_buf_at`] (`"untagged"` for plain
    /// [`take_buf`]).
    pub site: &'static str,
    /// Buffers handed out at this site.
    pub takes: u64,
    /// Total bytes handed out at this site.
    pub total_bytes: u64,
    /// Largest single request at this site, in bytes (the per-site peak).
    pub peak_bytes: u64,
}

/// Explicit-transpose materializations, incremented by `Tensor::transpose`.
static TRANSPOSES: AtomicU64 = AtomicU64::new(0);

/// Records one explicit transpose materialization (called by
/// `Tensor::transpose`); visible in [`ExecStats::transposes`].
pub(crate) fn note_transpose() {
    TRANSPOSES.fetch_add(1, Ordering::Relaxed);
}

/// Returns a snapshot of the process-wide execution-layer counters.
pub fn stats() -> ExecStats {
    let mut snap = {
        let inner = lock(&pool().buffers.stats);
        inner.snapshot()
    };
    snap.transposes = TRANSPOSES.load(Ordering::Relaxed);
    snap
}

/// Returns the per-site scratch accounting, in first-use order.
pub fn site_stats() -> Vec<SiteStats> {
    let inner = lock(&pool().buffers.stats);
    inner
        .sites
        .iter()
        .map(|(site, c)| SiteStats {
            site,
            takes: c.takes,
            total_bytes: c.total_bytes,
            peak_bytes: c.peak_bytes,
        })
        .collect()
}

/// Total bytes handed out so far at one site (0 if the site never
/// allocated). Convenience over [`site_stats`] for test assertions.
pub fn site_total_bytes(site: &str) -> u64 {
    site_stats()
        .iter()
        .find(|s| s.site == site)
        .map_or(0, |s| s.total_bytes)
}

impl Pool {
    fn from_env() -> Pool {
        // lint:allow(D1): SOLO_THREADS is the single sanctioned env knob,
        // read exactly once at pool initialization (D1 waiver per DESIGN.md).
        let configured = std::env::var("SOLO_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let width = configured.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Pool {
            width: width.clamp(1, MAX_WIDTH),
            buffers: BufferPool::default(),
        }
    }

    /// The configured worker width (the `SOLO_THREADS` value, defaulted and
    /// capped). Per-thread overrides from [`with_threads`] are not
    /// reflected here; see [`Pool::effective_width`].
    pub fn width(&self) -> usize {
        self.width
    }

    /// The width dispatch will actually use on the current thread: 1 inside
    /// a worker (depth-1 nesting), else the [`with_threads`] override, else
    /// the configured width.
    pub fn effective_width(&self) -> usize {
        if IN_WORKER.with(Cell::get) {
            1
        } else {
            WIDTH_OVERRIDE
                .with(Cell::get)
                .map_or(self.width, |n| n.clamp(1, MAX_WIDTH))
        }
    }

    /// Deterministic row-partitioned dispatch over a mutable output buffer.
    ///
    /// `out` is treated as `out.len() / row_len` contiguous rows; `f(r,
    /// row)` is invoked exactly once per row with a disjoint mutable slice,
    /// in ascending row order within each worker's contiguous span. Because
    /// every row is produced by the same per-row code regardless of the
    /// partition, the result is bit-identical at any worker count.
    ///
    /// `work_per_row` is an estimate of scalar operations per row; the
    /// dispatch stays serial when `rows × work_per_row` is too small to
    /// amortize thread spawn/join.
    ///
    /// # Panics
    ///
    /// Panics if `out` is non-empty and `out.len()` is not a multiple of
    /// `row_len`, or if a row task panics (the panic is propagated).
    pub fn par_rows<T, F>(&self, out: &mut [T], row_len: usize, work_per_row: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Send + Sync,
    {
        self.par_row_spans(out, row_len, 1, work_per_row, |start, span| {
            for (i, row) in span.chunks_mut(row_len).enumerate() {
                f(start + i, row);
            }
        });
    }

    /// Deterministic span-partitioned dispatch: like [`Pool::par_rows`], but
    /// `f(first_row, span)` receives a whole contiguous *span* of rows per
    /// worker instead of one row at a time, and span boundaries are aligned
    /// to multiples of `block_rows` (except the final span, which may end
    /// ragged at the buffer's last row).
    ///
    /// This is the dispatch shape for kernels that tile across rows — the
    /// blocked GEMM processes `MR`-row register tiles, so its spans must
    /// start on an `MR` boundary for the packed-A panels to line up. The
    /// determinism contract is the caller's: `f` must compute each row
    /// identically whatever span it lands in (true for any kernel whose
    /// per-element work does not depend on neighbouring rows), in which
    /// case the result is bit-identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `out` is non-empty and `out.len()` is not a multiple of
    /// `row_len`, if `block_rows` is zero, or if a span task panics (the
    /// panic is propagated).
    pub fn par_row_spans<T, F>(
        &self,
        out: &mut [T],
        row_len: usize,
        block_rows: usize,
        work_per_row: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Send + Sync,
    {
        if out.is_empty() {
            return;
        }
        assert!(row_len > 0, "par_row_spans row_len must be nonzero");
        assert!(block_rows > 0, "par_row_spans block_rows must be nonzero");
        assert_eq!(
            out.len() % row_len,
            0,
            "par_row_spans buffer is not a whole number of rows"
        );
        let rows = out.len() / row_len;
        let blocks = rows.div_ceil(block_rows);
        let workers = self.effective_width().min(blocks);
        if workers <= 1 || rows.saturating_mul(work_per_row) < MIN_PAR_WORK {
            f(0, out);
            return;
        }
        let base = blocks / workers;
        let extra = blocks % workers;
        let result = crossbeam::thread::scope(|s| {
            let f = &f;
            let mut rest = out;
            let mut row0 = 0usize;
            for w in 0..workers {
                let span_blocks = base + usize::from(w < extra);
                let span_rows = (span_blocks * block_rows).min(rows - row0);
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(span_rows * row_len);
                rest = tail;
                let start = row0;
                row0 += span_rows;
                if w + 1 == workers {
                    // The caller works the last span instead of idling at
                    // the join.
                    run_as_worker(|| f(start, chunk));
                } else {
                    s.spawn(move |_| run_as_worker(|| f(start, chunk)));
                }
            }
        });
        // lint:allow(P1): the scope only errs when a span task panicked;
        // re-raising the panic is the only sound continuation.
        result.expect("exec pool span task panicked");
    }

    /// Cost-gated variant of [`Pool::par_tasks`]: stays on the serial path
    /// when `n × work_per_task` estimated scalar ops are too small to
    /// amortize thread spawn/join, exactly like the row dispatchers.
    ///
    /// Use this for fan-outs that appear on latency-sensitive paths with
    /// wildly varying task sizes (e.g. the per-head attention loop, where a
    /// unit-test layer has 2 tokens and a backbone layer has hundreds).
    pub fn par_tasks_costed<T, F>(&self, n: usize, work_per_task: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        if n.saturating_mul(work_per_task) < MIN_PAR_WORK {
            return (0..n).map(f).collect();
        }
        self.par_tasks(n, f)
    }

    /// Deterministic indexed task fan-out: runs `f(0..n)` across up to
    /// `effective_width` workers and returns the results in index order.
    ///
    /// Each index is claimed by exactly one worker from a shared counter,
    /// so every task runs once; tasks must not depend on execution order
    /// (seed per-index RNGs). This is the coarse-grained API the experiment
    /// drivers use for the Table 2 grid and the Fig. 13a sweep.
    pub fn par_tasks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        let workers = self.effective_width().min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let result = crossbeam::thread::scope(|s| {
            let (f, next, slots) = (&f, &next, &slots);
            for _ in 1..workers {
                s.spawn(move |_| run_as_worker(|| task_loop(n, next, slots, f)));
            }
            run_as_worker(|| task_loop(n, next, slots, f));
        });
        // lint:allow(P1): the scope only errs when a task panicked;
        // re-raising the panic is the only sound continuation.
        result.expect("exec pool task panicked");
        slots
            .into_iter()
            .map(|slot| {
                let inner = slot.into_inner().unwrap_or_else(|e| e.into_inner());
                // lint:allow(P1): unreachable — the counter hands every
                // index to exactly one worker and the scope joined them all.
                inner.expect("every task index was claimed")
            })
            .collect()
    }

    /// Fixed-chunk parallel partials for reductions.
    ///
    /// Splits `0..len` into `⌈len / chunk⌉` spans of `chunk` elements (the
    /// last may be short), computes `f(start, end)` per span — possibly in
    /// parallel — and returns the partials in span order for the caller to
    /// fold serially. Because the chunk boundaries depend only on `len` and
    /// `chunk`, the folded result is identical at any worker count.
    pub fn par_partials<T, F>(&self, len: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Send + Sync,
    {
        assert!(chunk > 0, "par_partials chunk must be nonzero");
        let spans = len.div_ceil(chunk);
        self.par_tasks(spans, |c| {
            let start = c * chunk;
            f(start, (start + chunk).min(len))
        })
    }
}

fn task_loop<T, F: Fn(usize) -> T>(
    n: usize,
    next: &AtomicUsize,
    slots: &[Mutex<Option<T>>],
    f: &F,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let value = f(i);
        *lock(&slots[i]) = Some(value);
    }
}

/// Marks the current thread as a pool worker for the duration of `f`, so
/// nested dispatches stay serial. Restores the previous flag on exit.
fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|w| w.set(self.0));
        }
    }
    let _restore = Restore(IN_WORKER.with(|w| w.replace(true)));
    f()
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned lock only means another worker panicked; the panic is
    // propagated by the owning scope, so recovering the data here is sound.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bounded free list of `f32` buffers so hot kernels reuse allocations
/// across calls instead of hitting the allocator per forward/backward.
///
/// Buffers are handed out zeroed (kernels rely on zero-initialized
/// accumulators), best-fit by capacity. The list is bounded both in count
/// and per-buffer size so a one-off huge temporary cannot pin memory.
#[derive(Default)]
struct BufferPool {
    free: Mutex<Vec<Vec<f32>>>,
    stats: Mutex<StatsInner>,
}

/// Mutable half of [`ExecStats`] plus the per-site table; guarded by
/// `BufferPool::stats` so take/give keep the counters coherent.
#[derive(Default)]
struct StatsInner {
    takes: u64,
    reuse_hits: u64,
    taken_bytes: u64,
    live_bytes: u64,
    peak_live_bytes: u64,
    sites: Vec<(&'static str, SiteCounters)>,
}

#[derive(Default, Clone, Copy)]
struct SiteCounters {
    takes: u64,
    total_bytes: u64,
    peak_bytes: u64,
}

impl StatsInner {
    fn snapshot(&self) -> ExecStats {
        ExecStats {
            takes: self.takes,
            reuse_hits: self.reuse_hits,
            taken_bytes: self.taken_bytes,
            live_bytes: self.live_bytes,
            peak_live_bytes: self.peak_live_bytes,
            transposes: 0,
        }
    }

    fn record_take(&mut self, site: &'static str, bytes: u64, reused: bool) {
        self.takes += 1;
        self.reuse_hits += u64::from(reused);
        self.taken_bytes += bytes;
        self.live_bytes += bytes;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        let counters = match self.sites.iter_mut().find(|(s, _)| *s == site) {
            Some((_, c)) => c,
            None => {
                self.sites.push((site, SiteCounters::default()));
                // lint:allow(P1): just pushed, the vector is non-empty.
                &mut self.sites.last_mut().expect("just pushed").1
            }
        };
        counters.takes += 1;
        counters.total_bytes += bytes;
        counters.peak_bytes = counters.peak_bytes.max(bytes);
    }

    fn record_give(&mut self, bytes: u64) {
        // Buffers constructed outside the pool may be recycled into it;
        // saturate rather than double-book them as negative residency.
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }
}

impl BufferPool {
    fn take(&self, site: &'static str, len: usize) -> Vec<f32> {
        let mut free = lock(&self.free);
        let mut best: Option<usize> = None;
        for (i, buf) in free.iter().enumerate() {
            if buf.capacity() >= len && best.is_none_or(|j| free[j].capacity() > buf.capacity()) {
                best = Some(i);
            }
        }
        let found = best.map(|i| free.swap_remove(i));
        drop(free);
        lock(&self.stats).record_take(site, 4 * len as u64, found.is_some());
        match found {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    fn give(&self, buf: Vec<f32>) {
        lock(&self.stats).record_give(4 * buf.len() as u64);
        if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_ELEMS {
            return;
        }
        let mut free = lock(&self.free);
        if free.len() < MAX_POOLED_BUFFERS {
            free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_rows_matches_serial_at_any_width() {
        let rows = 37;
        let cols = 19;
        let fill = |r: usize, row: &mut [f32]| {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * 31 + c) as f32 * 0.5;
            }
        };
        let mut serial = vec![0.0f32; rows * cols];
        with_threads(1, || pool().par_rows(&mut serial, cols, MIN_PAR_WORK, fill));
        for width in [2, 3, 8] {
            let mut wide = vec![0.0f32; rows * cols];
            with_threads(width, || {
                pool().par_rows(&mut wide, cols, MIN_PAR_WORK, fill)
            });
            assert_eq!(serial, wide, "width {width} diverged");
        }
    }

    #[test]
    fn par_rows_small_work_stays_serial_and_correct() {
        let mut out = vec![0.0f32; 8];
        with_threads(8, || {
            pool().par_rows(&mut out, 2, 1, |r, row| row[0] = r as f32)
        });
        assert_eq!(out, vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn par_rows_empty_output_is_a_noop() {
        let mut out: Vec<f32> = Vec::new();
        pool().par_rows(&mut out, 0, 0, |_, _| unreachable!());
    }

    #[test]
    fn par_row_spans_aligns_spans_to_blocks() {
        // 37 rows in blocks of 4: at width 8 every span but the last must
        // start on a multiple of 4, and every row is visited exactly once.
        let rows = 37;
        let cols = 3;
        let starts = Mutex::new(Vec::new());
        let mut out = vec![0.0f32; rows * cols];
        with_threads(8, || {
            pool().par_row_spans(&mut out, cols, 4, MIN_PAR_WORK, |start, span| {
                lock(&starts).push((start, span.len() / cols));
                for (i, row) in span.chunks_mut(cols).enumerate() {
                    for v in row.iter_mut() {
                        *v += (start + i) as f32;
                    }
                }
            });
        });
        let mut starts = starts.into_inner().unwrap_or_else(|e| e.into_inner());
        starts.sort_unstable();
        let mut next = 0;
        for (start, len) in &starts {
            assert_eq!(*start, next, "span not contiguous");
            assert_eq!(start % 4, 0, "span start {start} not block-aligned");
            next = start + len;
        }
        assert_eq!(next, rows);
        for (r, row) in out.chunks(cols).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r} wrong");
        }
    }

    #[test]
    fn par_row_spans_serial_path_sees_whole_buffer() {
        let mut out = vec![0.0f32; 12];
        pool().par_row_spans(&mut out, 3, 2, 1, |start, span| {
            assert_eq!(start, 0);
            assert_eq!(span.len(), 12);
            span[0] = 5.0;
        });
        assert_eq!(out[0], 5.0);
    }

    #[test]
    fn par_tasks_costed_gates_on_work() {
        // Tiny work stays serial (observable via effective_width inside).
        let widths = with_threads(4, || {
            pool().par_tasks_costed(4, 1, |_| pool().effective_width())
        });
        assert!(
            widths.iter().all(|&w| w == 4),
            "small work should stay on the caller thread: {widths:?}"
        );
        let widths = with_threads(4, || {
            pool().par_tasks_costed(4, MIN_PAR_WORK, |_| pool().effective_width())
        });
        assert!(
            widths.iter().all(|&w| w == 1),
            "large work should fan out: {widths:?}"
        );
    }

    #[test]
    fn par_tasks_returns_results_in_index_order() {
        for width in [1, 2, 7] {
            let got = with_threads(width, || pool().par_tasks(23, |i| i * i));
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "width {width}");
        }
    }

    #[test]
    fn par_partials_boundaries_depend_on_len_only() {
        let data: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let fold = |width: usize| {
            with_threads(width, || {
                pool()
                    .par_partials(data.len(), 1024, |a, b| data[a..b].iter().sum::<f32>())
                    .iter()
                    .sum::<f32>()
            })
        };
        let one = fold(1);
        for width in [2, 4, 16] {
            assert_eq!(one.to_bits(), fold(width).to_bits(), "width {width}");
        }
    }

    #[test]
    fn nested_dispatch_runs_serially() {
        let depths = with_threads(4, || pool().par_tasks(4, |_| pool().effective_width()));
        // Inside a worker the effective width collapses to 1.
        assert!(depths.iter().all(|&w| w == 1), "{depths:?}");
    }

    #[test]
    fn with_threads_restores_previous_override() {
        with_threads(3, || {
            assert_eq!(pool().effective_width(), 3);
            with_threads(5, || assert_eq!(pool().effective_width(), 5));
            assert_eq!(pool().effective_width(), 3);
        });
    }

    #[test]
    fn buffer_pool_reuses_capacity_and_zeroes() {
        let mut buf = take_buf(256);
        buf.iter_mut().for_each(|v| *v = 7.0);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        recycle_buf(buf);
        let again = take_buf(128);
        // Best-fit may hand a different buffer under concurrent tests, but
        // the returned buffer must always be zeroed and long enough.
        assert_eq!(again.len(), 128);
        assert!(again.iter().all(|&v| v == 0.0));
        let _ = (ptr, cap);
    }

    #[test]
    fn stats_track_takes_and_site_peaks() {
        let before = stats();
        let buf = take_buf_at("exec.test_site", 64);
        let mid = stats();
        // Other tests in the binary share the counters, so assert deltas
        // as lower bounds only.
        assert!(mid.takes >= before.takes + 1);
        assert!(mid.taken_bytes >= before.taken_bytes + 256);
        assert!(mid.peak_live_bytes >= 256);
        recycle_buf(buf);
        let site = site_stats()
            .into_iter()
            .find(|s| s.site == "exec.test_site")
            .expect("tagged site recorded");
        assert!(site.takes >= 1);
        assert!(site.peak_bytes >= 256);
        assert!(site_total_bytes("exec.test_site") >= 256);
        assert_eq!(site_total_bytes("exec.never_used"), 0);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let huge = vec![0.0f32; MAX_POOLED_ELEMS + 1];
        recycle_buf(huge); // must not panic or pin memory
        let fresh = take_buf(4);
        assert_eq!(fresh.len(), 4);
    }
}
