//! The core dense tensor type.

use std::fmt;

use crate::Shape;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the workhorse of the SOLO workspace: images are `[C, H, W]`
/// tensors, batches are `[N, C, H, W]`, transformer activations are
/// `[tokens, dim]`, and saliency maps are `[H, W]`. The type is deliberately
/// simple — owned storage, no views, no lazy evaluation — so numerical code
/// stays easy to audit against the paper's equations.
///
/// ```
/// use solo_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from existing data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements implied
    /// by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Self { data, shape }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        Self {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor holding `0.0, 1.0, …, n-1`.
    pub fn arange(n: usize) -> Self {
        Self::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Consumes the tensor, returning its storage to the execution layer's
    /// scratch pool so a later kernel can reuse the allocation.
    ///
    /// Use this for short-lived intermediates on hot paths (layer caches,
    /// transposed copies); dropping a tensor normally is always correct,
    /// just less frugal.
    pub fn recycle(self) {
        crate::exec::recycle_buf(self.data);
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index has the wrong rank or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a copy with a new shape holding the same number of elements.
    ///
    /// # Panics
    ///
    /// Panics if the new shape implies a different element count.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let new = Shape::new(shape);
        assert_eq!(
            new.len(),
            self.len(),
            "cannot reshape {} elements into {new}",
            self.len()
        );
        Self {
            data: self.data.clone(),
            shape: new,
        }
    }

    /// Consuming variant of [`Tensor::reshape`]; avoids copying the storage.
    ///
    /// # Panics
    ///
    /// Panics if the new shape implies a different element count.
    pub fn into_reshaped(self, shape: &[usize]) -> Self {
        let new = Shape::new(shape);
        assert_eq!(
            new.len(),
            self.len(),
            "cannot reshape {} elements into {new}",
            self.len()
        );
        Self {
            data: self.data,
            shape: new,
        }
    }

    /// Extracts row `i` of a rank-2 tensor as a new rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.shape.ndim(), 2, "row() requires a rank-2 tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        assert!(i < r, "row {i} out of bounds for {}", self.shape);
        Tensor::from_vec(self.data[i * c..(i + 1) * c].to_vec(), &[c])
    }

    /// Stacks rank-`k` tensors of identical shape into a rank-`k+1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or the shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let inner = items[0].shape().clone();
        let mut data = Vec::with_capacity(items.len() * inner.len());
        for (i, t) in items.iter().enumerate() {
            assert_eq!(
                t.shape(),
                &inner,
                "tensor {i} has shape {} but expected {inner}",
                t.shape()
            );
            data.extend_from_slice(t.as_slice());
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(inner.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Concatenates rank-2 tensors along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty, a tensor is not rank-2, or column counts
    /// differ.
    pub fn concat_rows(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot concat zero tensors");
        let cols = items[0].shape().dim(1);
        let mut rows = 0;
        let mut data = Vec::new();
        for t in items {
            assert_eq!(t.shape().ndim(), 2, "concat_rows requires rank-2 tensors");
            assert_eq!(
                t.shape().dim(1),
                cols,
                "column count mismatch in concat_rows"
            );
            rows += t.shape().dim(0);
            data.extend_from_slice(t.as_slice());
        }
        Tensor::from_vec(data, &[rows, cols])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Default for Tensor {
    /// A rank-0 scalar tensor holding `0.0`.
    fn default() -> Self {
        Tensor::zeros(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(t.at(&[1]), 2.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0], &[2]);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn set_then_at_round_trips() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 7.5);
        assert_eq!(t.at(&[1, 0]), 7.5);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_bad_count() {
        Tensor::arange(6).reshape(&[4]);
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = Tensor::arange(3);
        let b = Tensor::full(&[3], 9.0);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.shape().dims(), &[2, 3]);
        assert_eq!(s.at(&[1, 0]), 9.0);
    }

    #[test]
    fn concat_rows_stacks_matrices() {
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let c = Tensor::concat_rows(&[a, b]);
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.at(&[0, 1]), 1.0);
        assert_eq!(c.at(&[2, 1]), 0.0);
    }

    #[test]
    fn row_extracts_copy() {
        let m = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(m.row(1).as_slice(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn debug_is_never_empty() {
        let s = format!("{:?}", Tensor::default());
        assert!(!s.is_empty());
        assert!(s.contains("Tensor"));
    }
}
