//! Elementwise operations, reductions and normalization kernels.

use crate::{exec, Tensor};

/// Fixed chunk length for parallel reductions. Chunk boundaries depend only
/// on the tensor length — never on the worker count — so the folded result
/// is bit-identical at any pool width, and tensors at or below one chunk
/// reduce exactly like the original serial kernel.
pub(crate) const REDUCE_CHUNK: usize = 32_768;

/// Nominal per-element cost hint for the pooled elementwise kernels; with
/// the pool's work floor this keeps small tensors on the serial path.
const MAP_COST: usize = 4;

impl Tensor {
    /// Applies `f` to every element, returning a new tensor.
    ///
    /// Element `i` of the output depends only on element `i` of the input,
    /// so the pool partitions the buffer into contiguous spans and the
    /// result is bit-identical at any width.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Send + Sync) -> Tensor {
        let src = self.as_slice();
        let mut out = exec::take_buf_at("ops.map", src.len());
        exec::pool().par_row_spans(&mut out, 1, 1, MAP_COST, |start, span| {
            let end = start + span.len();
            for (o, &v) in span.iter_mut().zip(&src[start..end]) {
                *o = f(v);
            }
        });
        Tensor::from_vec(out, self.shape().dims())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Send + Sync) {
        exec::pool().par_row_spans(self.as_mut_slice(), 1, 1, MAP_COST, |_, span| {
            for v in span {
                *v = f(*v);
            }
        });
    }

    /// Combines two tensors elementwise with `f`.
    ///
    /// Partitioned like [`Tensor::map`]; bit-identical at any pool width.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Send + Sync) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut out = exec::take_buf_at("ops.zip", a.len());
        exec::pool().par_row_spans(&mut out, 1, 1, MAP_COST, |start, span| {
            let end = start + span.len();
            for ((o, &x), &y) in span.iter_mut().zip(&a[start..end]).zip(&b[start..end]) {
                *o = f(x, y);
            }
        });
        Tensor::from_vec(out, self.shape().dims())
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place, optionally scaled: `self += k·other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, k: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += k * b;
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|v| v * k)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, k: f32) -> Tensor {
        self.map(|v| v + k)
    }

    /// Sum of all elements.
    ///
    /// Large tensors reduce in fixed [`REDUCE_CHUNK`]-element chunks whose
    /// partials are folded in order, so the result does not depend on the
    /// pool width.
    pub fn sum(&self) -> f32 {
        let data = self.as_slice();
        if data.len() <= REDUCE_CHUNK {
            return data.iter().sum();
        }
        exec::pool()
            .par_partials(data.len(), REDUCE_CHUNK, |a, b| {
                data[a..b].iter().sum::<f32>()
            })
            .iter()
            .sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for an empty tensor.
    ///
    /// Chunked like [`Tensor::sum`]; `max` is associative and
    /// `NEG_INFINITY` is its identity, so folding the per-chunk partials in
    /// chunk order reproduces the serial fold exactly at any pool width.
    pub fn max(&self) -> f32 {
        let data = self.as_slice();
        if data.len() <= REDUCE_CHUNK {
            return data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        }
        exec::pool()
            .par_partials(data.len(), REDUCE_CHUNK, |a, b| {
                data[a..b].iter().copied().fold(f32::NEG_INFINITY, f32::max)
            })
            .into_iter()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Returns `f32::INFINITY` for an empty tensor.
    ///
    /// Chunked like [`Tensor::max`].
    pub fn min(&self) -> f32 {
        let data = self.as_slice();
        if data.len() <= REDUCE_CHUNK {
            return data.iter().copied().fold(f32::INFINITY, f32::min);
        }
        exec::pool()
            .par_partials(data.len(), REDUCE_CHUNK, |a, b| {
                data[a..b].iter().copied().fold(f32::INFINITY, f32::min)
            })
            .into_iter()
            .fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in flattened order. Ties resolve to the
    /// **last** maximal element under `total_cmp`, matching the serial
    /// `max_by` kernel; per-chunk winners are folded in chunk order with the
    /// same later-wins rule, so the chunked result is identical.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let data = self.as_slice();
        if data.len() <= REDUCE_CHUNK {
            return argmax_span(data, 0);
        }
        exec::pool()
            .par_partials(data.len(), REDUCE_CHUNK, |a, b| {
                let i = argmax_span(&data[a..b], a);
                (i, data[i])
            })
            .into_iter()
            .reduce(|best, cand| {
                if cand.1.total_cmp(&best.1).is_ge() {
                    cand
                } else {
                    best
                }
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Squared Euclidean (Frobenius) norm.
    ///
    /// Chunked like [`Tensor::sum`] so the result is independent of the pool
    /// width.
    pub fn norm_sq(&self) -> f32 {
        let data = self.as_slice();
        if data.len() <= REDUCE_CHUNK {
            return data.iter().map(|v| v * v).sum();
        }
        exec::pool()
            .par_partials(data.len(), REDUCE_CHUNK, |a, b| {
                data[a..b].iter().map(|v| v * v).sum::<f32>()
            })
            .iter()
            .sum()
    }

    /// Mean squared difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mse(&self, other: &Tensor) -> f32 {
        self.sub(other).norm_sq() / self.len().max(1) as f32
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Softmax along the last axis of a rank-2 tensor, numerically stabilised
    /// by subtracting the row max.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "softmax_rows requires rank-2");
        let (rows, cols) = (self.shape().dim(0), self.shape().dim(1));
        let src = self.as_slice();
        let mut out = exec::take_buf_at("ops.softmax", rows * cols);
        exec::pool().par_rows(&mut out, cols.max(1), 6 * cols, |r, orow| {
            let row = &src[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (o, &v) in orow.iter_mut().zip(row) {
                let e = (v - m).exp();
                *o = e;
                denom += e;
            }
            for o in orow {
                *o /= denom;
            }
        });
        Tensor::from_vec(out, self.shape().dims())
    }

    /// Layer normalization along the last axis of a rank-2 tensor.
    ///
    /// Normalizes each row to zero mean and unit variance:
    /// `(x − μ) / √(σ² + eps)`. Scale and shift are applied by the caller
    /// (the `nn` crate owns the learnable γ/β).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn layernorm_rows(&self, eps: f32) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "layernorm_rows requires rank-2");
        let (rows, cols) = (self.shape().dim(0), self.shape().dim(1));
        let src = self.as_slice();
        let mut out = exec::take_buf_at("ops.layernorm", rows * cols);
        exec::pool().par_rows(&mut out, cols.max(1), 6 * cols, |r, orow| {
            let row = &src[r * cols..(r + 1) * cols];
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / cols as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (o, &v) in orow.iter_mut().zip(row) {
                *o = (v - mean) * inv;
            }
        });
        Tensor::from_vec(out, self.shape().dims())
    }
}

/// Index of the last maximal element of `span` (under `total_cmp`), offset
/// by `base` into the parent slice. Returns `base` for an empty span.
fn argmax_span(span: &[f32], base: usize) -> usize {
    span.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i + base)
        .unwrap_or(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn add_sub_mul_are_elementwise() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_rejects_mismatched_shapes() {
        Tensor::zeros(&[2]).add(&Tensor::zeros(&[3]));
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert!(close(t.sum(), 2.0));
        assert!(close(t.mean(), 2.0 / 3.0));
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert!(close(t.norm_sq(), 14.0));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1e4, 1e4, 1e4], &[2, 3]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!(close(sum, 1.0), "row {r} sums to {sum}");
        }
        // Monotone in the logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 0]));
        // Large equal logits do not overflow.
        assert!(close(s.at(&[1, 0]), 1.0 / 3.0));
    }

    #[test]
    fn layernorm_rows_zero_mean_unit_var() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let n = t.layernorm_rows(1e-5);
        assert!(close(n.mean(), 0.0));
        let var = n.norm_sq() / 4.0;
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn add_scaled_inplace_accumulates() {
        let mut a = Tensor::ones(&[2]);
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.add_scaled_inplace(&g, -0.5);
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]);
        assert_eq!(t.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let t = Tensor::arange(4);
        assert_eq!(t.mse(&t), 0.0);
    }
}
