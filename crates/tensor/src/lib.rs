//! # solo-tensor
//!
//! A small, dependency-light dense tensor library used by every other crate
//! in the SOLO workspace. It provides exactly the numerical substrate the
//! paper's algorithms need — row-major `f32` tensors, GEMM, `im2col`
//! convolution lowering, bilinear resampling, reductions and the softmax /
//! layer-norm kernels used by the transformer blocks — without pulling in a
//! full deep-learning framework (the reproduction notes flag Rust DL crates
//! as immature, so the substrate is built from scratch).
//!
//! The central type is [`Tensor`]: an owned, contiguous, row-major buffer of
//! `f32` values plus a [`Shape`]. Operations that combine tensors validate
//! shapes eagerly and panic with a descriptive message on mismatch, in the
//! spirit of `ndarray`; all panics are documented on the individual methods.
//!
//! ```
//! use solo_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

#![warn(missing_docs)]

pub mod exec;
mod image;
mod linalg;
mod ops;
mod packed;
mod random;
mod shape;
mod tensor;

pub use image::{avg_pool2d, bilinear_resize, max_pool2d};
pub use linalg::{col2im, im2col, Im2ColSpec, BLOCKED_MIN_MULADDS};
pub use packed::{
    matmul_packed_batched, qgemm_i8, qmatmul_packed_batched, PackedCache, PackedMatrix, PanelKind,
    QPackedMatrix, SharedPackedCache,
};
pub use random::{kaiming_uniform, normal, seeded_rng, uniform, xavier_uniform};
pub use shape::Shape;
pub use tensor::Tensor;
