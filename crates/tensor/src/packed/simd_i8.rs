//! AVX2 variant of the scalar i8 micro-kernel.
//!
//! The kernel consumes depth *pairs* so each `_mm256_madd_epi16` retires
//! two multiply-accumulates per i32 lane — the ~2× instruction-density win
//! over the f32 kernel. Per pair it:
//!
//! * loads both p-major B depth rows in one 256-bit load and interleaves
//!   them byte-wise in-register (`punpcklbw`/`punpckhbw`), then
//!   sign-extends each half to the `[b[p][j], b[p+1][j]]` i16-pair shape
//!   `madd` wants;
//! * loads the A panel's 8-byte pair chunk once, sign-extends it to four
//!   i16 pairs (one dword per row), mirrors the dwords into both 128-bit
//!   lanes (`vbroadcasti128`) and broadcasts each row's dword with an
//!   immediate-operand `vpshufd` — no scalar packing and no index
//!   registers in the hot loop (all 16 ymm registers stay available for
//!   the 8 accumulators plus temporaries).
//!
//! Bit-identity with the scalar reference kernel holds by *exactness*,
//! not by chain-matching as in the f32 path: every product fits an
//! i16×i16 multiply, every pair sum fits an i32 (max 2·127² = 32258, so
//! `madd`'s only saturating case — both operands −32768 — is unreachable
//! from i8 inputs), and i32 addition is associative. `unsafe` is confined
//! to this module: the `target_feature` call contract plus unaligned
//! loads/stores whose bounds are pinned by `chunks_exact`/array types.
#![allow(unsafe_code)]

use super::{MR, NR};
use core::arch::x86_64::{
    __m128i, _mm256_add_epi32, _mm256_broadcastsi128_si256, _mm256_castsi256_si128,
    _mm256_cvtepi8_epi16, _mm256_dpwssd_epi32, _mm256_extracti128_si256, _mm256_loadu_si256,
    _mm256_madd_epi16, _mm256_shuffle_epi32, _mm256_storeu_si256, _mm_cvtepi8_epi16,
    _mm_loadl_epi64, _mm_unpackhi_epi8, _mm_unpacklo_epi8,
};

/// The i8 kernel tier the host supports, detected once: 0 = scalar only,
/// 1 = AVX2 ([`microkernel_i8`]), 2 = AVX-512 VNNI at 256-bit width
/// ([`microkernel_i8_vnni`]). Every tier computes the same exact integers,
/// so dispatch can never change an output.
pub fn level() -> u8 {
    static LEVEL: std::sync::OnceLock<u8> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx512vnni")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            2
        } else if std::arch::is_x86_feature_detected!("avx2") {
            1
        } else {
            0
        }
    })
}

/// AVX2 i8 micro-kernel; see the module docs for the exactness argument.
///
/// # Safety
///
/// The caller must have verified AVX2 support (the dispatch site witnesses
/// `simd::available()`). The slice geometry (`a_panel.len() == kp·MR`,
/// `b_panel.len() == kp·NR` with even `kp`) is enforced by `chunks_exact`
/// — in particular every A chunk holds exactly the 8 bytes the 64-bit
/// load reads — and every load/store is the unaligned variant, so no
/// further alignment or bounds contract is needed.
#[target_feature(enable = "avx2")]
pub unsafe fn microkernel_i8(a_panel: &[i8], b_panel: &[i8], acc: &mut [[i32; NR]; MR]) {
    const {
        assert!(
            NR == 16,
            "AVX2 i8 kernel assumes two 8-lane i32 registers per row"
        )
    };
    const { assert!(MR == 4, "AVX2 i8 kernel unrolls exactly four rows") };
    let mut a0l = _mm256_loadu_si256(acc[0].as_ptr().cast());
    let mut a0h = _mm256_loadu_si256(acc[0][8..].as_ptr().cast());
    let mut a1l = _mm256_loadu_si256(acc[1].as_ptr().cast());
    let mut a1h = _mm256_loadu_si256(acc[1][8..].as_ptr().cast());
    let mut a2l = _mm256_loadu_si256(acc[2].as_ptr().cast());
    let mut a2h = _mm256_loadu_si256(acc[2][8..].as_ptr().cast());
    let mut a3l = _mm256_loadu_si256(acc[3].as_ptr().cast());
    let mut a3h = _mm256_loadu_si256(acc[3][8..].as_ptr().cast());
    for (ap, bp) in a_panel
        .chunks_exact(2 * MR)
        .zip(b_panel.chunks_exact(2 * NR))
    {
        // Both p-major depth rows of the pair in one load, interleaved
        // byte-wise so lane j carries [b[p][j], b[p+1][j]].
        let b = _mm256_loadu_si256(bp.as_ptr().cast());
        let b0 = _mm256_castsi256_si128(b);
        let b1 = _mm256_extracti128_si256::<1>(b);
        let bl = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(b0, b1));
        let bh = _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(b0, b1));
        // The A pair chunk: 8 i8 → 8 i16 (one dword per row), mirrored
        // into both lanes so an immediate vpshufd broadcasts row r's
        // dword to all 8 i32 lanes without holding index registers.
        let a8: __m128i = _mm_loadl_epi64(ap.as_ptr().cast());
        let a16 = _mm256_broadcastsi128_si256(_mm_cvtepi8_epi16(a8));
        let av = _mm256_shuffle_epi32::<0x00>(a16);
        a0l = _mm256_add_epi32(a0l, _mm256_madd_epi16(bl, av));
        a0h = _mm256_add_epi32(a0h, _mm256_madd_epi16(bh, av));
        let av = _mm256_shuffle_epi32::<0x55>(a16);
        a1l = _mm256_add_epi32(a1l, _mm256_madd_epi16(bl, av));
        a1h = _mm256_add_epi32(a1h, _mm256_madd_epi16(bh, av));
        let av = _mm256_shuffle_epi32::<0xAA>(a16);
        a2l = _mm256_add_epi32(a2l, _mm256_madd_epi16(bl, av));
        a2h = _mm256_add_epi32(a2h, _mm256_madd_epi16(bh, av));
        let av = _mm256_shuffle_epi32::<0xFF>(a16);
        a3l = _mm256_add_epi32(a3l, _mm256_madd_epi16(bl, av));
        a3h = _mm256_add_epi32(a3h, _mm256_madd_epi16(bh, av));
    }
    _mm256_storeu_si256(acc[0].as_mut_ptr().cast(), a0l);
    _mm256_storeu_si256(acc[0][8..].as_mut_ptr().cast(), a0h);
    _mm256_storeu_si256(acc[1].as_mut_ptr().cast(), a1l);
    _mm256_storeu_si256(acc[1][8..].as_mut_ptr().cast(), a1h);
    _mm256_storeu_si256(acc[2].as_mut_ptr().cast(), a2l);
    _mm256_storeu_si256(acc[2][8..].as_mut_ptr().cast(), a2h);
    _mm256_storeu_si256(acc[3].as_mut_ptr().cast(), a3l);
    _mm256_storeu_si256(acc[3][8..].as_mut_ptr().cast(), a3h);
}

/// VNNI i8 micro-kernel: identical panel walk to [`microkernel_i8`], but
/// each `madd` + `add` pair fuses into one `vpdpwssd`, halving the
/// vector-ALU µops per depth pair. `vpdpwssd` widens the i16 products to
/// i32 before accumulating, so it has no saturating case at all — the
/// accumulated integers are the same exact values as every other tier.
///
/// # Safety
///
/// The caller must have verified [`level`] returns 2 (AVX-512 VNNI + VL).
/// The slice geometry contract is the same as [`microkernel_i8`].
#[target_feature(enable = "avx2,avx512vnni,avx512vl")]
pub unsafe fn microkernel_i8_vnni(a_panel: &[i8], b_panel: &[i8], acc: &mut [[i32; NR]; MR]) {
    const {
        assert!(
            NR == 16,
            "VNNI i8 kernel assumes two 8-lane i32 registers per row"
        )
    };
    const { assert!(MR == 4, "VNNI i8 kernel unrolls exactly four rows") };
    let mut a0l = _mm256_loadu_si256(acc[0].as_ptr().cast());
    let mut a0h = _mm256_loadu_si256(acc[0][8..].as_ptr().cast());
    let mut a1l = _mm256_loadu_si256(acc[1].as_ptr().cast());
    let mut a1h = _mm256_loadu_si256(acc[1][8..].as_ptr().cast());
    let mut a2l = _mm256_loadu_si256(acc[2].as_ptr().cast());
    let mut a2h = _mm256_loadu_si256(acc[2][8..].as_ptr().cast());
    let mut a3l = _mm256_loadu_si256(acc[3].as_ptr().cast());
    let mut a3h = _mm256_loadu_si256(acc[3][8..].as_ptr().cast());
    for (ap, bp) in a_panel
        .chunks_exact(2 * MR)
        .zip(b_panel.chunks_exact(2 * NR))
    {
        let b = _mm256_loadu_si256(bp.as_ptr().cast());
        let b0 = _mm256_castsi256_si128(b);
        let b1 = _mm256_extracti128_si256::<1>(b);
        let bl = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(b0, b1));
        let bh = _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(b0, b1));
        let a8: __m128i = _mm_loadl_epi64(ap.as_ptr().cast());
        let a16 = _mm256_broadcastsi128_si256(_mm_cvtepi8_epi16(a8));
        let av = _mm256_shuffle_epi32::<0x00>(a16);
        a0l = _mm256_dpwssd_epi32(a0l, bl, av);
        a0h = _mm256_dpwssd_epi32(a0h, bh, av);
        let av = _mm256_shuffle_epi32::<0x55>(a16);
        a1l = _mm256_dpwssd_epi32(a1l, bl, av);
        a1h = _mm256_dpwssd_epi32(a1h, bh, av);
        let av = _mm256_shuffle_epi32::<0xAA>(a16);
        a2l = _mm256_dpwssd_epi32(a2l, bl, av);
        a2h = _mm256_dpwssd_epi32(a2h, bh, av);
        let av = _mm256_shuffle_epi32::<0xFF>(a16);
        a3l = _mm256_dpwssd_epi32(a3l, bl, av);
        a3h = _mm256_dpwssd_epi32(a3h, bh, av);
    }
    _mm256_storeu_si256(acc[0].as_mut_ptr().cast(), a0l);
    _mm256_storeu_si256(acc[0][8..].as_mut_ptr().cast(), a0h);
    _mm256_storeu_si256(acc[1].as_mut_ptr().cast(), a1l);
    _mm256_storeu_si256(acc[1][8..].as_mut_ptr().cast(), a1h);
    _mm256_storeu_si256(acc[2].as_mut_ptr().cast(), a2l);
    _mm256_storeu_si256(acc[2][8..].as_mut_ptr().cast(), a2h);
    _mm256_storeu_si256(acc[3].as_mut_ptr().cast(), a3l);
    _mm256_storeu_si256(acc[3][8..].as_mut_ptr().cast(), a3h);
}
