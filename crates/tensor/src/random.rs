//! Seeded random tensor initialization.
//!
//! Every stochastic component in the workspace draws from a
//! [`rand_chacha::ChaCha8Rng`] seeded explicitly, so each table and figure in
//! `EXPERIMENTS.md` is regenerated bit-for-bit by its bench binary.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::Tensor;

/// Creates the workspace-standard seeded RNG.
///
/// ```
/// let mut rng = solo_tensor::seeded_rng(42);
/// let t = solo_tensor::uniform(&mut rng, &[4], -1.0, 1.0);
/// assert!(t.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
/// ```
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Samples a tensor with entries uniform in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(rng: &mut impl Rng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform requires lo < hi (got {lo} >= {hi})");
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(lo..hi)).collect(), shape)
}

/// Samples a tensor with Gaussian entries via Box–Muller.
pub fn normal(rng: &mut impl Rng, shape: &[usize], mean: f32, std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a weight tensor.
///
/// `fan_in`/`fan_out` are passed explicitly because convolution weights fold
/// kernel taps into the fan.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform(
    rng: &mut impl Rng,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "xavier fan sum must be nonzero");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, -bound, bound)
}

/// Kaiming/He uniform initialization (for ReLU-family networks).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform(rng: &mut impl Rng, shape: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "kaiming fan_in must be nonzero");
    let bound = (3.0f32).sqrt() * (2.0 / fan_in as f32).sqrt();
    uniform(rng, shape, -bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform(&mut seeded_rng(7), &[16], 0.0, 1.0);
        let b = uniform(&mut seeded_rng(7), &[16], 0.0, 1.0);
        assert_eq!(a, b);
        let c = uniform(&mut seeded_rng(8), &[16], 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&mut seeded_rng(1), &[1000], -2.0, 3.0);
        assert!(t.as_slice().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_has_requested_moments() {
        let t = normal(&mut seeded_rng(2), &[20000], 1.5, 0.5);
        assert!((t.mean() - 1.5).abs() < 0.02, "mean {}", t.mean());
        let var = t.map(|v| (v - 1.5).powi(2)).mean();
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let small = xavier_uniform(&mut seeded_rng(3), &[64], 4, 4);
        let large = xavier_uniform(&mut seeded_rng(3), &[64], 4000, 4000);
        assert!(small.max().abs() > large.max().abs());
    }

    #[test]
    fn kaiming_bound_is_finite() {
        let t = kaiming_uniform(&mut seeded_rng(4), &[128], 256);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }
}
