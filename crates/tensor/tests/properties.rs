//! Property-based tests on the tensor substrate's algebraic invariants.

use proptest::prelude::*;
use solo_tensor::{avg_pool2d, bilinear_resize, Tensor};

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c).prop_map(move |v| (r, c, v))
    })
}

proptest! {
    #[test]
    fn matmul_identity_left_and_right((r, c, data) in small_matrix()) {
        let m = Tensor::from_vec(data, &[r, c]);
        let left = Tensor::eye(r).matmul(&m);
        let right = m.matmul(&Tensor::eye(c));
        for (a, b) in m.as_slice().iter().zip(left.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in m.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involutive((r, c, data) in small_matrix()) {
        let m = Tensor::from_vec(data, &[r, c]);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        (r, k, a) in small_matrix(),
        extra in proptest::collection::vec(-10.0f32..10.0, 36),
    ) {
        let a = Tensor::from_vec(a, &[r, k]);
        let b = Tensor::from_vec(extra[..k * 3].to_vec(), &[k, 3]);
        let c = Tensor::from_vec(extra[k * 3..k * 6].to_vec(), &[k, 3]);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn softmax_rows_are_distributions((r, c, data) in small_matrix()) {
        let s = Tensor::from_vec(data, &[r, c]).softmax_rows();
        for row in 0..r {
            let sum: f32 = s.as_slice()[row * c..(row + 1) * c].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
        prop_assert!(s.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn avg_pool_preserves_mean_for_even_dims(
        data in proptest::collection::vec(0.0f32..1.0, 2 * 4 * 4)
    ) {
        let img = Tensor::from_vec(data, &[2, 4, 4]);
        let pooled = avg_pool2d(&img, 2);
        prop_assert!((img.mean() - pooled.mean()).abs() < 1e-5);
    }

    #[test]
    fn bilinear_resize_respects_value_range(
        data in proptest::collection::vec(0.0f32..1.0, 3 * 6 * 6),
        oh in 1usize..12,
        ow in 1usize..12,
    ) {
        let img = Tensor::from_vec(data, &[3, 6, 6]);
        let out = bilinear_resize(&img, oh, ow);
        // Interpolation never extrapolates outside the input range.
        prop_assert!(out.min() >= img.min() - 1e-5);
        prop_assert!(out.max() <= img.max() + 1e-5);
    }
}
