//! Quickstart: segment only where you look, in fifty lines.
//!
//! Builds a synthetic scene, trains a small SOLO pipeline for a few
//! minutes of CPU time, then segments the instance under the user's gaze
//! and prints the predicted mask next to the ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use solo_core::backbones::BackboneKind;
use solo_core::solonet::{Method, MethodPipeline, PipelineConfig};
use solo_scene::{DatasetConfig, SceneDataset};
use solo_tensor::{seeded_rng, Tensor};

fn main() {
    let dataset = DatasetConfig::lvis_like().with_resolution(64);
    let config = PipelineConfig::for_dataset(&dataset, 64, 16);
    let data = SceneDataset::new(dataset);
    let mut rng = seeded_rng(7);

    println!("generating data and training SOLO (SF backbone)…");
    let train = data.samples(120, &mut rng);
    let test = data.samples(20, &mut rng);
    let mut solo = MethodPipeline::new(&mut rng, Method::Solo, BackboneKind::Sf, config, 5e-3);
    solo.train(&train, 8);

    let scores = solo.evaluate_all(&test);
    println!(
        "test b-IoU {:.3}, c-IoU {:.3} over {} samples\n",
        scores.b_iou,
        scores.c_iou,
        test.len()
    );

    // Segment one sample and draw it.
    let sample = &test[0];
    if let MethodPipeline::Solo(pipeline) = &mut solo {
        let map = pipeline.index_map(sample);
        let packed = pipeline.pack_sampled(&map, sample);
        let (mask, logits) = pipeline.seg.infer(&packed);
        let up = map.upsample(&mask.reshape(&[1, 16, 16]));
        println!(
            "gaze at ({:.2}, {:.2}); predicted class {} (truth {})",
            sample.gaze.x,
            sample.gaze.y,
            logits.argmax(),
            sample.ioi_class.id()
        );
        println!("predicted mask        |  ground truth");
        draw_pair(&up.into_reshaped(&[64, 64]), &sample.ioi_mask);
    }
}

/// ASCII side-by-side rendering of two 64² masks (subsampled to 32 cols).
fn draw_pair(pred: &Tensor, gt: &Tensor) {
    for row in (0..64).step_by(2) {
        let mut line = String::new();
        for col in (0..64).step_by(2) {
            line.push(if pred.at(&[row, col]) > 0.5 { '#' } else { '.' });
        }
        line.push_str("  |  ");
        for col in (0..64).step_by(2) {
            line.push(if gt.at(&[row, col]) > 0.5 { '#' } else { '.' });
        }
        println!("{line}");
    }
}
