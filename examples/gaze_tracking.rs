//! Train the Gaze-Tracking ViT on synthetic eye images and inspect the
//! effect of attention-score token pruning (Section 3.2).
//!
//! ```text
//! cargo run --release --example gaze_tracking
//! ```

use solo_core::esnet::{GtVit, GtVitConfig};
use solo_gaze::GazePoint;
use solo_scene::EyeDataset;
use solo_tensor::seeded_rng;

fn main() {
    let mut rng = seeded_rng(3);
    let eyes = EyeDataset::default();
    let train = eyes.samples(150, &mut rng);
    let test = eyes.samples(40, &mut rng);

    let mut vit = GtVit::new(&mut rng, GtVitConfig::tiny());
    println!(
        "pretraining GT-ViT on {} synthetic eye images…",
        train.len()
    );
    let loss = vit.pretrain(&train, 20, 2e-3);
    println!("final epoch MSE: {loss:.5}");

    let err = vit.gaze_error(&test);
    println!(
        "mean gaze error with 30% token pruning: {:.3} (≈{:.0} px on a 960² frame)",
        err,
        err * 960.0
    );

    // A few example predictions.
    println!("\n  truth (x, y)      predicted (x, y)");
    for s in test.iter().take(5) {
        let p: GazePoint = vit.predict(&s.image);
        println!(
            "  ({:.2}, {:.2})   →   ({:.2}, {:.2})",
            s.gaze.x, s.gaze.y, p.x, p.y
        );
    }
}
