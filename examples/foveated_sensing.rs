//! Hardware walk-through: what saliency-based sensing saves, stage by
//! stage, for one Aria-sized frame (Fig. 8 / Fig. 15 of the paper).
//!
//! ```text
//! cargo run --release --example foveated_sensing
//! ```

use solo_hw::mipi::MipiLink;
use solo_hw::sensor::{synthetic_foveated_selection, Lighting, Sensor};
use solo_hw::soc::{Backbone, Dataset, Pipeline, SocModel};

fn main() {
    let (full, down) = (960usize, 120usize);
    let sensor = Sensor::new(full, full);
    let link = MipiLink::default();

    println!(
        "sensor: {}×{} pixels, {} ADCs in 4 interleaved sub-groups\n",
        full,
        full,
        sensor.adc_count()
    );

    let conventional = sensor.full_readout(Lighting::High);
    let conv_mipi = link.transfer_frame(full, full, 3);
    println!("conventional capture of the full frame:");
    println!(
        "  exposure     {:>10}   {:>10}",
        format!("{}", conventional.exposure),
        format!("{}", conventional.exposure_energy)
    );
    println!(
        "  ADC+readout  {:>10}   {:>10}   ({} rounds, {} px)",
        format!("{}", conventional.adc_readout),
        format!("{}", conventional.adc_energy),
        conventional.rounds,
        conventional.pixels_read
    );
    println!(
        "  MIPI         {:>10}   {:>10}\n",
        format!("{}", conv_mipi.latency),
        format!("{}", conv_mipi.energy)
    );

    let preview = sensor.subsampled_readout(down, down, Lighting::High);
    let selection = synthetic_foveated_selection(full, down);
    let resense = sensor.sbs_readout(&selection, Lighting::High);
    let sbs_mipi = link.transfer_frame(down, down, 3);
    println!("saliency-based sensing (preview + foveated re-read):");
    println!(
        "  exposure     {:>10}   (single exposure, shared)",
        format!("{}", preview.exposure)
    );
    println!(
        "  preview ADC  {:>10}   ({} rounds, {} px)",
        format!("{}", preview.adc_readout),
        preview.rounds,
        preview.pixels_read
    );
    println!(
        "  SBS ADC      {:>10}   ({} rounds, {} px)",
        format!("{}", resense.adc_readout),
        resense.rounds,
        resense.pixels_read
    );
    println!(
        "  MIPI ×2      {:>10}   {:>10}\n",
        format!("{}", sbs_mipi.latency * 2.0),
        format!("{}", sbs_mipi.energy * 2.0)
    );

    let ratio = (conventional.exposure + conventional.adc_readout + conv_mipi.latency)
        / (preview.exposure + preview.adc_readout + resense.adc_readout + sbs_mipi.latency * 2.0);
    println!(
        "total sensing latency reduction from SBS: {ratio:.1}x (paper: ~4.3x avg in high light)\n"
    );

    println!("end-to-end pipelines (HR backbone, Aria geometry):");
    let soc = SocModel::default();
    for p in Pipeline::FIG13 {
        let cost = soc.evaluate(p, Backbone::Hr, Dataset::Aria);
        println!(
            "  {:<8} {:>8.1} ms   {:>8.1} mJ",
            p.name(),
            cost.latency().ms(),
            cost.energy().mj()
        );
    }
}
