//! The paper's Figure 1 (a) scenario: an AR grocery shelf.
//!
//! A user wearing AR glasses scans a cluttered shelf; as their gaze lands
//! on each product, SOLO segments only that product and the SOLO Streaming
//! Algorithm reuses results while the gaze dwells. The example streams a
//! synthetic shelf video, prints what the user looks at fixation by
//! fixation, and compares the per-frame latency with and without reuse.
//!
//! ```text
//! cargo run --release --example ar_grocery
//! ```

use solo_core::ssa::{Ssa, SsaConfig, SsaDecision};
use solo_hw::soc::{Backbone, Dataset, Pipeline, SocModel};
use solo_sampler::uniform_subsample;
use solo_scene::{VideoConfig, VideoSequence};
use solo_tensor::seeded_rng;

fn main() {
    // A dense shelf: many objects, slow browsing with frequent refixation.
    let mut config = VideoConfig::aria_like(600);
    config.dataset.resolution = 64;
    config.dataset.objects = (8, 12);
    config.refixation_rate = 0.6;
    let video = VideoSequence::generate(config, &mut seeded_rng(21));

    let soc = SocModel::default();
    let run_ms = soc
        .evaluate(Pipeline::Solo, Backbone::Hr, Dataset::Aria)
        .latency()
        .ms();
    let skip_ms = soc.skip_path(Dataset::Aria).latency().ms();

    let mut ssa = Ssa::new(SsaConfig::paper_default(960));
    let mut looked_at: Vec<(f64, String)> = Vec::new();
    let mut skipped = 0usize;
    let mut total_ms = 0.0;
    let mut last_reported: Option<usize> = None;
    for i in 0..video.len() {
        let frame = video.frame(i);
        let preview = uniform_subsample(&frame.image, 16, 16);
        let decision = ssa.step(&preview, frame.gaze.point, frame.gaze.phase.is_suppressed());
        total_ms += if decision.must_run() { run_ms } else { skip_ms };
        if !decision.must_run() {
            skipped += 1;
        }
        // Report each *new* product the gaze settles on.
        if decision == SsaDecision::RunGazeShifted || decision == SsaDecision::RunViewChanged {
            if let (Some(class), idx) = (frame.ioi_class, frame.ioi_index) {
                if last_reported != idx {
                    looked_at.push((frame.gaze.t_ms / 1000.0, format!("{class:?}")));
                    last_reported = idx;
                }
            }
        }
    }

    println!("products the user looked at:");
    for (t, name) in &looked_at {
        println!("  t = {t:>5.1} s  →  {name}");
    }
    println!(
        "\n{} of {} frames reused ({:.0}%)",
        skipped,
        video.len(),
        skipped as f32 / video.len() as f32 * 100.0
    );
    println!(
        "mean per-frame latency: {:.1} ms with SSA vs {run_ms:.1} ms without (a {:.2}x speedup)",
        total_ms / video.len() as f64,
        run_ms / (total_ms / video.len() as f64)
    );
}
