//! Renders the SOLO pipeline's intermediate artifacts to image files and
//! prints the Fig-11-style timing diagram of a frame through the SoC.
//!
//! Writes into `./solo_viz/`: the frame, the IOI ground truth, the
//! saliency map, the foveated sample, the predicted mask overlay.
//!
//! ```text
//! cargo run --release --example visualize
//! ```

use solo_core::backbones::BackboneKind;
use solo_core::solonet::FoveatedPipeline;
use solo_core::solonet::PipelineConfig;
use solo_hw::soc::{Backbone, Dataset, Pipeline, SocModel, Trace};
use solo_hw::timing::render_gantt;
use solo_sampler::uniform_subsample;
use solo_scene::export::{overlay_mask, write_pgm, write_ppm};
use solo_scene::{DatasetConfig, SceneDataset};
use solo_tensor::seeded_rng;

fn main() -> std::io::Result<()> {
    let out = std::path::Path::new("solo_viz");
    std::fs::create_dir_all(out)?;

    let ds = DatasetConfig::aria_like().with_resolution(96);
    let cfg = PipelineConfig::for_dataset(&ds, 96, 24);
    let data = SceneDataset::new(ds);
    let mut rng = seeded_rng(17);
    println!("training a small SOLO pipeline for the demo…");
    let train = data.samples(80, &mut rng);
    let mut pipeline = FoveatedPipeline::new(&mut rng, BackboneKind::Hr, cfg, true, 5e-3);
    for _ in 0..6 {
        for s in &train {
            pipeline.train_step(s);
        }
    }

    let sample = data.sample(&mut rng);
    write_ppm(&sample.image, out.join("frame.ppm"))?;
    write_pgm(&sample.ioi_mask, out.join("ground_truth.pgm"))?;

    let preview = uniform_subsample(&sample.image, 24, 24);
    let saliency = pipeline.saliency.saliency(&preview, sample.gaze);
    write_pgm(&saliency, out.join("saliency.pgm"))?;

    let map = pipeline.index_map(&sample);
    let sampled = map.sample_bilinear(&sample.image);
    write_ppm(&sampled, out.join("foveated_sample.ppm"))?;

    let packed = pipeline.pack_sampled(&map, &sample);
    let (mask, logits) = pipeline.seg.infer(&packed);
    let up = map
        .upsample(&mask.reshape(&[1, 24, 24]))
        .into_reshaped(&[96, 96])
        .map(|v| if v > 0.5 { 1.0 } else { 0.0 });
    write_ppm(
        &overlay_mask(&sample.image, &up, 0.5),
        out.join("overlay.ppm"),
    )?;
    println!(
        "wrote 5 images to {}; predicted class {} (truth {})",
        out.display(),
        logits.argmax(),
        sample.ioi_class.id()
    );

    println!("\nframe timing through the SoC (SOLO pipeline, HR on Aria):\n");
    let trace = Trace::new();
    SocModel::default().evaluate_traced(Pipeline::Solo, Backbone::Hr, Dataset::Aria, &trace);
    print!("{}", render_gantt(&trace.events(), 56));
    println!("\nand the same frame through the conventional FR+GPU path:\n");
    let trace = Trace::new();
    SocModel::default().evaluate_traced(Pipeline::FrGpu, Backbone::Hr, Dataset::Aria, &trace);
    print!("{}", render_gantt(&trace.events(), 56));
    Ok(())
}
